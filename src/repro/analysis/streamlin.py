"""Online linearizability: a streaming checker with a rolling frontier.

Every batch verdict path buffers a complete history before checking it,
which caps validated runs at what memory holds.  This module checks a
history *as its events arrive*:

**Configurations.**  The checker maintains the set of *configurations*
``(mask, state)`` — every spec state reachable by linearizing some
precedence-closed subset (``mask``) of the resident operations.  The
set is kept eagerly closed: whenever an operation's response arrives
(fixing its result), every configuration that can linearize it — all
real-time predecessors already in its mask — spawns the extended
configuration, transitively.  This is the same bitmask Wing-Gong walk
as :func:`~repro.analysis.fastlin.check_history`, run breadth-complete
and incrementally instead of depth-first over a buffered history.

**Forced cuts and the rolling verified frontier.**  Real-time
precedence is an interval order, so once every *open* (invoked,
unanswered) operation was invoked after operation ``r``'s response,
``r`` precedes everything that can still arrive: every viable future
linearizes ``r`` using only already-completed operations — paths the
eager closure has already materialised.  Configurations not containing
``r`` are therefore redundant (pruned), and ``r``'s bit is **retired**:
removed from every mask, its record freed, its bit recycled.  If *no*
configuration contains ``r`` at that point the history is not
linearizable — FAIL, proven online.  Retired prefixes come with a
certificate: the history up to ``frontier_index`` is linearizable no
matter what arrives later, so a disconnected stream still yields a
meaningful PARTIAL verdict — never a bogus OK.

**Bounded memory.**  Under sustained load operations retire as soon as
the oldest in-flight operation postdates them, so peak resident
operations track the stream's *overlap width* (how many operations are
concurrent at once), not its length.  Pending operations can never be
retired — their intervals extend to infinity — so they stay resident
until the stream ends, exactly matching the batch semantics where a
pending operation may linearize anywhere after its invocation (or be
dropped with a :data:`~repro.analysis.fastlin.PENDING` result).

**P-compositionality.**  A spec with ``partition_key`` splits the
stream into independent per-key sub-streams, each with its own resident
set, configurations, frontier and budget accounting.

**Structured budgets.**  Closure work is metered per *window* of
``window`` events: more than ``max_nodes_per_window`` transitions in
one window, or more than ``max_configs`` live configurations, marks the
partition undecided — it stops checking but keeps draining (residents
dropped, memory stays bounded) and the final verdict degrades to
:data:`~repro.analysis.fastlin.LIN_UNDECIDED` instead of OK.  Wide
adversarial overlap (hundreds of operations mutually concurrent) is
where the configuration set can genuinely grow; bounded overlap — every
real runtime workload — keeps it near one configuration per open op.

The long-running service front-end is ``python -m repro serve``
(:mod:`repro.rt.serve`); :mod:`repro.rt.stress` streams into this
checker when ``--online`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.fastlin import (
    DEFAULT_MAX_NODES,
    LIN_FAIL,
    LIN_OK,
    LIN_UNDECIDED,
    PENDING,
    SeqSpec,
)
from repro.sim.events import CrashEvent, Invocation, Response
from repro.sim.history import OperationRecord

#: Events per budget-accounting window.
DEFAULT_WINDOW = 256

#: Live configurations before a partition is declared undecided.  Real
#: workloads sit near one configuration per open operation; only wide
#: adversarial overlap approaches this.
DEFAULT_MAX_CONFIGS = 4096

#: Verdict of a stream that ended (disconnect, truncation) before its
#: ``end`` marker: the retired prefix is verified, the rest unknown.
LIN_PARTIAL = "partial"


def tag_read_op(op: OperationRecord) -> OperationRecord:
    """Per-operation form of :func:`repro.analysis.specs.tag_reads`."""
    if op.name == "read" and not op.args:
        return replace(op, args=(op.pid,), primitives=list(op.primitives))
    return op


def tag_pid_op(
    op: OperationRecord, names: Tuple[str, ...] = ("update", "scan")
) -> OperationRecord:
    """Per-operation form of
    :func:`repro.analysis.specs.tag_ops_with_pid`."""
    if op.name in names:
        return replace(
            op, args=op.args + (op.pid,), primitives=list(op.primitives)
        )
    return op


@dataclass
class StreamProgress:
    """Structured progress of one streaming check (all partitions)."""

    events: int = 0
    ops_started: int = 0
    ops_completed: int = 0
    ops_retired: int = 0
    resident_ops: int = 0
    peak_resident_ops: int = 0
    #: Largest event index verified regardless of what arrives later.
    frontier_index: int = -1
    windows: int = 0
    undecided_windows: int = 0
    explored: int = 0
    partitions: int = 0
    #: Live configurations — the possible spec states at the frontier.
    frontier_states: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "ops_started": self.ops_started,
            "ops_completed": self.ops_completed,
            "ops_retired": self.ops_retired,
            "resident_ops": self.resident_ops,
            "peak_resident_ops": self.peak_resident_ops,
            "frontier_index": self.frontier_index,
            "windows": self.windows,
            "undecided_windows": self.undecided_windows,
            "explored": self.explored,
            "partitions": self.partitions,
            "frontier_states": self.frontier_states,
        }


@dataclass
class StreamVerdict:
    """Outcome of a streaming check.

    ``status`` is :data:`~repro.analysis.fastlin.LIN_OK`,
    :data:`~repro.analysis.fastlin.LIN_FAIL`,
    :data:`~repro.analysis.fastlin.LIN_UNDECIDED` (a window exhausted
    its node or configuration budget) or :data:`LIN_PARTIAL` (the
    stream ended without a proper finish — the prefix up to
    ``progress.frontier_index`` is verified, the rest is unknown).
    """

    status: str
    progress: StreamProgress

    @property
    def ok(self) -> bool:
        return self.status == LIN_OK

    def __bool__(self) -> bool:
        return self.ok


class _ResidentGauge:
    """Current/peak count of resident ops across all partitions."""

    __slots__ = ("current", "peak")

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def add(self, n: int) -> None:
        self.current += n
        if self.current > self.peak:
            self.peak = self.current


class _PartitionStream:
    """One partition's residents, configurations and verdict."""

    __slots__ = (
        "spec", "window", "max_nodes", "max_configs", "gauge",
        "ops", "by_key", "pred", "free_bits", "next_bit",
        "completed_mask", "open_count", "configs",
        "retired", "windows", "undecided_windows", "explored",
        "window_events", "window_explored",
        "failed", "dead", "frontier_index", "last_index",
    )

    def __init__(
        self,
        spec: SeqSpec,
        window: int,
        max_nodes: int,
        max_configs: int,
        gauge: _ResidentGauge,
    ) -> None:
        # A partition is never re-partitioned (mirrors FastLinChecker).
        if spec.partition_key is not None:
            spec = replace(spec, partition_key=None, partition_spec=None)
        self.spec = spec
        self.window = window
        self.max_nodes = max_nodes
        self.max_configs = max_configs
        self.gauge = gauge
        #: bit position -> resident operation (open or completed).
        self.ops: Dict[int, OperationRecord] = {}
        self.by_key: Dict[Tuple[str, int], int] = {}
        #: bit position -> mask of resident real-time predecessors
        #: (retired predecessors are implicit: they are in every mask).
        self.pred: Dict[int, int] = {}
        self.free_bits: List[int] = []
        self.next_bit = 0
        self.completed_mask = 0
        self.open_count = 0
        self.configs: Set[Tuple[int, Any]] = {(0, spec.initial)}
        self.retired = 0
        self.windows = 0
        self.undecided_windows = 0
        self.explored = 0
        self.window_events = 0
        self.window_explored = 0
        self.failed = False
        self.dead = False  # stop checking; keep draining events
        self.frontier_index = -1
        self.last_index = -1

    # -- event intake ------------------------------------------------------

    def _tick(self, index: int) -> None:
        self.last_index = index
        self.window_events += 1
        if self.window_events >= self.window:
            self.windows += 1
            self.window_events = 0
            self.window_explored = 0

    def invoke(self, op: OperationRecord) -> None:
        self._tick(op.invoke_index)
        if self.dead:
            return
        bit = self.free_bits.pop() if self.free_bits else self.next_bit
        if bit == self.next_bit:
            self.next_bit += 1
        self.ops[bit] = op
        self.by_key[op.key()] = bit
        # Everything already completed precedes this op; open residents
        # are concurrent with it.
        self.pred[bit] = self.completed_mask
        self.open_count += 1
        self.gauge.add(1)

    def respond(self, pid: str, op_id: int, result: Any, index: int) -> None:
        self._tick(index)
        if self.dead:
            return
        bit = self.by_key.pop((pid, op_id), None)
        if bit is None:
            raise ValueError(
                f"response for unknown operation ({pid!r}, {op_id})"
            )
        op = self.ops[bit]
        op.response_index = index
        op.result = result
        self.open_count -= 1
        self.completed_mask |= 1 << bit
        self._extend(1 << bit)
        if not self.dead:
            self._retire()

    # -- the configuration closure -----------------------------------------

    def _extend(self, fresh_mask: int) -> None:
        """Restore eager closure after ``fresh_mask`` ops completed.

        Existing configurations only need to try the fresh bits (their
        other extensions are already materialised); configurations
        discovered during the sweep try every completed op.
        """
        apply = self.spec.apply
        ops = self.ops
        pred = self.pred
        configs = self.configs
        trans: Dict[Tuple[int, Any], Any] = {}
        stack = [(cfg, fresh_mask) for cfg in configs]
        max_nodes = self.max_nodes
        while stack:
            (mask, state), cand = stack.pop()
            rem = cand & self.completed_mask & ~mask
            while rem:
                bmask = rem & -rem
                rem ^= bmask
                i = bmask.bit_length() - 1
                if pred[i] & ~mask:
                    continue  # a predecessor is not linearized yet
                self.explored += 1
                self.window_explored += 1
                if self.window_explored > max_nodes:
                    self._die(failed=False)
                    return
                key = (i, state)
                if key in trans:
                    new_state = trans[key]
                else:
                    op = ops[i]
                    new_state = trans[key] = apply(
                        state, op.name, op.args, op.result
                    )
                if new_state is None:
                    continue
                cfg = (mask | bmask, new_state)
                if cfg in configs:
                    continue
                configs.add(cfg)
                if len(configs) > self.max_configs:
                    self._die(failed=False)
                    return
                stack.append((cfg, self.completed_mask))

    # -- the rolling frontier ----------------------------------------------

    def _retire(self) -> None:
        """Forced cut: free every op all viable futures have linearized.

        A completed op whose response precedes every open op's
        invocation precedes everything that can still arrive, and the
        eager closure has already materialised every order among it and
        its completed concurrents — so configurations lacking it are
        redundant and its bit can be dropped.  No configuration
        containing it means no linearization can ever include it: FAIL.
        """
        if self.open_count:
            cut = min(
                op.invoke_index
                for op in self.ops.values()
                if op.response_index is None
            )
        else:
            cut = None
        retire_mask = 0
        retire_bits: List[int] = []
        for i, op in self.ops.items():
            if op.response_index is not None and (
                cut is None or op.response_index < cut
            ):
                retire_mask |= 1 << i
                retire_bits.append(i)
        if not retire_mask:
            return
        survivors = {
            (mask & ~retire_mask, state)
            for mask, state in self.configs
            if mask & retire_mask == retire_mask
        }
        if not survivors:
            self._die(failed=True)
            return
        self.configs = survivors
        for i in retire_bits:
            del self.ops[i]
            del self.pred[i]
            self.free_bits.append(i)
        for i in self.pred:
            self.pred[i] &= ~retire_mask
        self.completed_mask &= ~retire_mask
        self.retired += len(retire_bits)
        self.gauge.add(-len(retire_bits))

    def _die(self, *, failed: bool) -> None:
        """Stop checking (budget blown or violation proven), drop all
        residency so memory stays bounded, keep draining events."""
        if failed:
            self.failed = True
        else:
            self.undecided_windows += 1
        self.dead = True
        self.frontier_index = self.frontier()
        self.gauge.add(-len(self.ops))
        self.ops.clear()
        self.by_key.clear()
        self.pred.clear()
        self.configs = set()
        self.open_count = 0

    def frontier(self) -> int:
        """Largest event index verified no matter what arrives later."""
        if self.dead:
            return self.frontier_index
        if self.ops:
            return min(op.invoke_index for op in self.ops.values()) - 1
        return self.last_index

    def finish(self) -> str:
        """Final verdict for this partition, pending ops included."""
        if self.failed:
            return LIN_FAIL
        if self.dead:
            return LIN_UNDECIDED
        required = self.completed_mask
        # A pending op (never responded / crashed) may linearize
        # anywhere after its invocation with a PENDING result, or be
        # dropped — exactly the batch semantics.  Make them addable and
        # re-close with a fresh window budget.
        pending_mask = 0
        for i, op in self.ops.items():
            if op.response_index is None:
                op.result = PENDING
                pending_mask |= 1 << i
        if pending_mask:
            self.completed_mask |= pending_mask
            self.window_explored = 0
            self._extend(pending_mask)
            if self.dead:
                return LIN_FAIL if self.failed else LIN_UNDECIDED
        for mask, _state in self.configs:
            if mask & required == required:
                count = len(self.ops)
                self.retired += count
                self.gauge.add(-count)
                self.ops.clear()
                self.by_key.clear()
                self.pred.clear()
                self.completed_mask = 0
                self.open_count = 0
                self.frontier_index = self.last_index
                return LIN_OK
        return LIN_FAIL


class StreamingLinChecker:
    """Incremental linearizability over an event stream.

    Feed :class:`~repro.sim.events.Invocation` /
    :class:`~repro.sim.events.Response` events (crash and primitive
    events are accepted and ignored — a crashed operation simply stays
    pending) in history-index order via :meth:`feed`, then call
    :meth:`finish` for the final verdict or :meth:`partial` when the
    stream was cut.  ``tag`` is an optional per-operation transform
    applied at invocation (e.g. :func:`tag_read_op` for specs that need
    reader identity); it runs before ``partition_key``.
    """

    def __init__(
        self,
        spec: SeqSpec,
        *,
        window: int = DEFAULT_WINDOW,
        max_nodes_per_window: int = DEFAULT_MAX_NODES,
        max_configs: int = DEFAULT_MAX_CONFIGS,
        tag: Optional[Callable[[OperationRecord], OperationRecord]] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.spec = spec
        self.window = window
        self.max_nodes_per_window = max_nodes_per_window
        self.max_configs = max_configs
        self.tag = tag
        self._partitions: Dict[Any, _PartitionStream] = {}
        self._route: Dict[Tuple[str, int], _PartitionStream] = {}
        self._gauge = _ResidentGauge()
        self._events = 0
        self._started = 0
        self._completed = 0
        self._last_index = -1
        self._verdict: Optional[str] = None

    # -- partition routing -------------------------------------------------

    def _partition_for(self, op: OperationRecord) -> _PartitionStream:
        if self.spec.partition_key is None:
            key = None
        else:
            key = self.spec.partition_key(op.name, op.args)
        stream = self._partitions.get(key)
        if stream is None:
            if key is not None and self.spec.partition_spec is not None:
                subspec = self.spec.partition_spec(key)
            else:
                subspec = self.spec
            stream = _PartitionStream(
                subspec, self.window, self.max_nodes_per_window,
                self.max_configs, self._gauge,
            )
            self._partitions[key] = stream
        return stream

    # -- event intake ------------------------------------------------------

    def feed(self, event: Any) -> None:
        """Consume one history event (in index order)."""
        if isinstance(event, Invocation):
            self.on_invoke(
                event.pid, event.op_id, event.op_name, event.args,
                event.index,
            )
        elif isinstance(event, Response):
            self.on_response(
                event.pid, event.op_id, event.result, event.index
            )
        elif isinstance(event, CrashEvent):
            self._events += 1  # the op, if any, simply stays pending
            self._last_index = max(self._last_index, event.index)
        else:
            self._events += 1  # primitive events carry no lin content
            index = getattr(event, "index", None)
            if index is not None:
                self._last_index = max(self._last_index, index)

    def on_invoke(
        self,
        pid: str,
        op_id: int,
        name: str,
        args: Tuple[Any, ...],
        index: int,
    ) -> None:
        self._events += 1
        self._started += 1
        self._last_index = max(self._last_index, index)
        op = OperationRecord(
            pid=pid, op_id=op_id, name=name, args=tuple(args),
            invoke_index=index,
        )
        if self.tag is not None:
            op = self.tag(op)
        stream = self._partition_for(op)
        self._route[(pid, op_id)] = stream
        stream.invoke(op)

    def on_response(
        self, pid: str, op_id: int, result: Any, index: int
    ) -> None:
        self._events += 1
        self._completed += 1
        self._last_index = max(self._last_index, index)
        stream = self._route.pop((pid, op_id), None)
        if stream is None:
            raise ValueError(
                f"response for unknown operation ({pid!r}, {op_id})"
            )
        stream.respond(pid, op_id, result, index)

    def feed_operations(
        self, operations: Sequence[OperationRecord]
    ) -> None:
        """Decompose finished operation records into an event stream
        (index-ordered) and feed it — the offline entry point."""
        events: List[Tuple[int, int, OperationRecord]] = []
        for op in operations:
            events.append((op.invoke_index, 0, op))
            if op.response_index is not None:
                events.append((op.response_index, 1, op))
        events.sort(key=lambda entry: entry[0])
        for index, kind, op in events:
            if kind == 0:
                self.on_invoke(op.pid, op.op_id, op.name, op.args, index)
            else:
                self.on_response(op.pid, op.op_id, op.result, index)

    # -- verdicts ----------------------------------------------------------

    def progress(self) -> StreamProgress:
        # The global verified frontier: every event at or before it lies
        # in the retired (verified) region.  A partition's unverified
        # region starts at its earliest resident invocation; a dead
        # partition stalls at wherever its own frontier stopped.
        frontier = self._last_index
        for p in self._partitions.values():
            frontier = min(frontier, p.frontier())
        return StreamProgress(
            events=self._events,
            ops_started=self._started,
            ops_completed=self._completed,
            ops_retired=sum(p.retired for p in self._partitions.values()),
            resident_ops=self._gauge.current,
            peak_resident_ops=self._gauge.peak,
            frontier_index=frontier,
            windows=sum(p.windows for p in self._partitions.values()),
            undecided_windows=sum(
                p.undecided_windows for p in self._partitions.values()
            ),
            explored=sum(p.explored for p in self._partitions.values()),
            partitions=len(self._partitions),
            frontier_states=sum(
                len(p.configs) for p in self._partitions.values()
            ),
        )

    @property
    def peak_resident_ops(self) -> int:
        return self._gauge.peak

    def finish(self) -> StreamVerdict:
        """The stream ended properly: produce the full verdict
        (equal to the batch fastlin verdict on the same history)."""
        if self._verdict is None:
            statuses = {p.finish() for p in self._partitions.values()}
            if LIN_FAIL in statuses:
                self._verdict = LIN_FAIL
            elif LIN_UNDECIDED in statuses:
                self._verdict = LIN_UNDECIDED
            else:
                self._verdict = LIN_OK
        return StreamVerdict(self._verdict, self.progress())

    def partial(self) -> StreamVerdict:
        """The stream was cut (disconnect, truncation): report the
        verified frontier.  A violation already proven still FAILs; an
        exhausted budget still reads UNDECIDED; otherwise the verdict
        is PARTIAL — never a bogus OK."""
        if any(p.failed for p in self._partitions.values()):
            return StreamVerdict(LIN_FAIL, self.progress())
        if any(p.dead for p in self._partitions.values()):
            return StreamVerdict(LIN_UNDECIDED, self.progress())
        return StreamVerdict(LIN_PARTIAL, self.progress())


def check_history_streaming(
    operations: Sequence[OperationRecord],
    spec: SeqSpec,
    *,
    window: int = DEFAULT_WINDOW,
    max_nodes_per_window: int = DEFAULT_MAX_NODES,
    max_configs: int = DEFAULT_MAX_CONFIGS,
    tag: Optional[Callable[[OperationRecord], OperationRecord]] = None,
) -> StreamVerdict:
    """Stream a recorded history through :class:`StreamingLinChecker`.

    The verdict's ``status`` equals the batch
    :func:`~repro.analysis.fastlin.check_history` status on the same
    operations and spec (given sufficient budgets); memory is bounded
    by the stream's overlap width instead of its length.
    """
    checker = StreamingLinChecker(
        spec,
        window=window,
        max_nodes_per_window=max_nodes_per_window,
        max_configs=max_configs,
        tag=tag,
    )
    checker.feed_operations(operations)
    return checker.finish()
