"""Detecting *effective* reads (Definition 2) from traces.

Claim 4 (and Claim 35 for the max register) characterises effectiveness
syntactically: a read operation by ``p_j`` is effective iff it completed,
or it is pending and either

1. it read ``x = prev_sn`` from ``SN`` (a *silent* read: the return
   value is the previously read ``prev_val``), or
2. it applied a ``fetch&xor`` to ``R`` (a *direct* read: the return
   value is the value field of the fetched triple).

This module replays each reader's primitive events to reconstruct its
``prev_sn``/``prev_val`` local state and classifies every read
operation.  The classification is purely a function of the reader's own
events -- effectiveness is a local property -- so it applies equally to
complete and pending (e.g. crashed) operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.sim.history import History, OperationRecord


@dataclass(frozen=True)
class EffectiveRead:
    """An effective read: who, what, and the step it became effective."""

    pid: str
    op_id: int
    reader_index: int
    value: Any
    effective_index: int  # global event index of the effectiveness step
    kind: str  # "silent" or "direct"
    complete: bool


def classify_read(
    op: OperationRecord,
    prev_sn: int,
    prev_val: Any,
    r_name: str,
    sn_name: str,
    decode,
) -> Optional[dict]:
    """Classify one read given the reader's state before it.

    Returns None when the read is unclassified (not effective), else a
    dict with kind, value, effective event index and the reader's new
    (prev_sn, prev_val).
    """
    sn_read = None
    for event in op.primitives:
        if event.obj_name == sn_name and event.primitive == "read":
            sn_read = event
            break
    if sn_read is None:
        return None  # crashed before its first primitive
    if sn_read.result == prev_sn:
        return {
            "kind": "silent",
            "value": prev_val,
            "index": sn_read.index,
            "prev_sn": prev_sn,
            "prev_val": prev_val,
        }
    for event in op.primitives:
        if event.obj_name == r_name and event.primitive == "fetch_xor":
            word = event.result
            value = decode(word.val)
            return {
                "kind": "direct",
                "value": value,
                "index": event.index,
                "prev_sn": word.seq,
                "prev_val": value,
            }
    return None  # read SN with a new value but crashed before fetch&xor


def effective_reads(history: History, register) -> List[EffectiveRead]:
    """All effective reads on ``register`` in ``history``.

    ``register`` is an :class:`~repro.core.AuditableRegister` (or max
    register); its base-object names identify the relevant primitives
    and ``_decode_value`` strips nonces.
    """
    r_name = register.R.name
    sn_name = register.SN.name
    decode = register._decode_value
    results: List[EffectiveRead] = []
    # Reader indices are recovered from fetch&xor masks; silent reads
    # inherit the index from the reader's preceding direct read.
    state: Dict[str, dict] = {}
    for op in history.operations(name="read"):
        touches = any(
            e.obj_name in (r_name, sn_name) for e in op.primitives
        )
        if not touches and op.primitives:
            continue  # a read on some other object
        st = state.setdefault(
            op.pid, {"prev_sn": -1, "prev_val": register.initial, "index": None}
        )
        verdict = classify_read(
            op, st["prev_sn"], st["prev_val"], r_name, sn_name, decode
        )
        if verdict is None:
            continue
        if verdict["kind"] == "direct":
            for event in op.primitives:
                if event.obj_name == r_name and event.primitive == "fetch_xor":
                    mask = event.args[0]
                    st["index"] = mask.bit_length() - 1
                    break
        st["prev_sn"] = verdict["prev_sn"]
        st["prev_val"] = verdict["prev_val"]
        if st["index"] is None:
            # A silent read before any direct read can only return the
            # initial value with prev_sn == -1; it cannot occur because
            # SN starts at 0 != -1.  Guard anyway.
            continue
        results.append(
            EffectiveRead(
                pid=op.pid,
                op_id=op.op_id,
                reader_index=st["index"],
                value=register._decode_value(verdict["value"]),
                effective_index=verdict["index"],
                kind=verdict["kind"],
                complete=op.is_complete,
            )
        )
    return results
