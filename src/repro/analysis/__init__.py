"""Analysis tooling: mechanical checks of the paper's claims.

- :mod:`repro.analysis.fastlin` -- the high-performance linearizability
  oracle: bitmask Wing-Gong search with forced-operation pruning,
  P-compositional partitioning, structured ``undecided`` budgets and a
  batched parallel verdict service.
- :mod:`repro.analysis.linearizability` -- legacy shim over ``fastlin``
  (historical raising-budget contract; keeps the naive reference
  implementation for differential testing).
- :mod:`repro.analysis.specs` -- sequential specifications (register,
  max register, snapshot, counter, and their auditable variants).
- :mod:`repro.analysis.effectiveness` -- detects *effective* reads
  (Definition 2) from traces via the characterisation of Claim 4/35.
- :mod:`repro.analysis.audit_checks` -- audit exactness oracle: an audit
  must report exactly the effective reads linearized before it.
- :mod:`repro.analysis.phases` -- validates the E/D phase structure of
  executions (Lemma 1 / Lemma 25), per-reader fetch&xor uniqueness
  (Lemma 17) and the (seq, value) walk (Lemma 18 / Lemma 27).
- :mod:`repro.analysis.leakage` -- honest-but-curious leakage: paired
  indistinguishable executions (Lemmas 6, 7, 38) and empirical attacker
  advantage.
"""

from repro.analysis.audit_checks import (
    AuditOracle,
    AuditViolation,
    WindowedAuditOracle,
    audit_oracle,
    check_audit_exactness,
    check_audit_exactness_streaming,
    check_audit_monotone,
    expected_audit_set,
    windowed_audit_oracle,
)
from repro.analysis.fastlin import (
    LIN_FAIL,
    LIN_OK,
    LIN_UNDECIDED,
    BatchVerdict,
    FastLinChecker,
    check_histories_parallel,
    lin_jobs,
    op_from_payload,
    op_to_payload,
    spec_from_name,
    spec_names,
)
from repro.analysis.fastlin import check_history as fast_check_history
from repro.analysis.effectiveness import (
    EffectiveRead,
    classify_read,
    effective_reads,
)
from repro.analysis.exhaustive import (
    ExplorationBudgetExceeded,
    ExplorationReport,
    count_interleavings,
    explore,
)
from repro.analysis.leakage import (
    AttackOutcome,
    empirical_advantage,
    first_divergence,
    membership_guess,
    observed_values,
    projections_equal,
    success_rate,
    tracking_bits_seen,
)
from repro.analysis.linearizability import (
    PENDING,
    LinearizabilityChecker,
    LinearizationResult,
    SeqSpec,
    check_history,
)
from repro.analysis.phases import (
    PhaseViolation,
    check_fetch_xor_uniqueness,
    check_phase_structure,
    check_value_sequence,
    phase_intervals,
)
from repro.analysis.specs import (
    auditable_max_register_spec,
    auditable_register_spec,
    counter_object_spec,
    max_register_spec,
    register_array_spec,
    register_spec,
    snapshot_spec,
    stream_max_register_spec,
    stream_register_spec,
    stream_snapshot_spec,
    tag_ops_with_pid,
    tag_reads,
    versioned_spec,
)
from repro.analysis.streamlin import (
    LIN_PARTIAL,
    StreamingLinChecker,
    StreamProgress,
    StreamVerdict,
    check_history_streaming,
)

__all__ = [
    "LIN_FAIL",
    "LIN_OK",
    "LIN_PARTIAL",
    "LIN_UNDECIDED",
    "PENDING",
    "AttackOutcome",
    "AuditOracle",
    "AuditViolation",
    "BatchVerdict",
    "EffectiveRead",
    "ExplorationBudgetExceeded",
    "ExplorationReport",
    "FastLinChecker",
    "LinearizabilityChecker",
    "LinearizationResult",
    "PhaseViolation",
    "SeqSpec",
    "StreamProgress",
    "StreamVerdict",
    "StreamingLinChecker",
    "WindowedAuditOracle",
    "audit_oracle",
    "auditable_max_register_spec",
    "auditable_register_spec",
    "check_audit_exactness",
    "check_audit_exactness_streaming",
    "check_audit_monotone",
    "check_histories_parallel",
    "fast_check_history",
    "check_fetch_xor_uniqueness",
    "check_history",
    "check_history_streaming",
    "check_phase_structure",
    "check_value_sequence",
    "classify_read",
    "count_interleavings",
    "counter_object_spec",
    "effective_reads",
    "explore",
    "empirical_advantage",
    "expected_audit_set",
    "first_divergence",
    "lin_jobs",
    "max_register_spec",
    "membership_guess",
    "observed_values",
    "op_from_payload",
    "op_to_payload",
    "phase_intervals",
    "projections_equal",
    "register_array_spec",
    "register_spec",
    "snapshot_spec",
    "spec_from_name",
    "spec_names",
    "stream_max_register_spec",
    "stream_register_spec",
    "stream_snapshot_spec",
    "success_rate",
    "windowed_audit_oracle",
    "tag_ops_with_pid",
    "tag_reads",
    "tracking_bits_seen",
    "versioned_spec",
]
