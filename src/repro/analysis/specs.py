"""Sequential specifications for the linearizability checker.

Each factory returns a :class:`~repro.analysis.linearizability.SeqSpec`.
The auditable specs implement the paper's sequential specification of an
auditable object: a pair ``(j, v)`` appears in an audit's response *iff*
a read by ``p_j`` returning ``v`` precedes the audit (accuracy +
completeness).

Reader identity: histories record ``read()`` with empty args, but the
auditable specs must know which reader performed each read.  Callers tag
operations with their pid first (:func:`tag_reads` /
:func:`tag_ops_with_pid`).

Spec states are hashable tuples so the checker can memoise on them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.analysis.linearizability import PENDING, SeqSpec


def register_spec(initial: Any, name: str = "register") -> SeqSpec:
    """Plain read/write register: a read returns the latest write."""

    def apply(state, op_name, args, result):
        if op_name == "write":
            return args[0]
        if op_name == "read":
            if result is PENDING or result == state:
                return state
            return None
        return None

    return SeqSpec(name, initial, apply)


def max_register_spec(initial: Any, name: str = "max_register") -> SeqSpec:
    """Max register: a read returns the largest value written so far."""

    def apply(state, op_name, args, result):
        if op_name in ("write_max", "writeMax"):
            return max(state, args[0])
        if op_name == "read":
            if result is PENDING or result == state:
                return state
            return None
        return None

    return SeqSpec(name, initial, apply)


def counter_object_spec(name: str = "counter") -> SeqSpec:
    """Counter: update(d) adds d, read returns the running total."""

    def apply(state, op_name, args, result):
        if op_name == "update":
            return state + args[0]
        if op_name == "read":
            if result is PENDING or result == state:
                return state
            return None
        return None

    return SeqSpec(name, 0, apply)


def auditable_register_spec(
    initial: Any,
    reader_index: Dict[str, int],
    name: str = "auditable_register",
) -> SeqSpec:
    """Auditable register: state is ``(value, frozenset((j, v)))``.

    Reads must be tagged with their pid (:func:`tag_reads`); audits'
    results must equal the set of pairs of linearized preceding reads.
    """

    def apply(state, op_name, args, result):
        value, pairs = state
        if op_name == "write":
            return (args[0], pairs)
        if op_name == "read":
            if result is not PENDING and result != value:
                return None
            j = reader_index[args[0]]
            return (value, pairs | {(j, value)})
        if op_name == "audit":
            if result is PENDING or result == pairs:
                return state
            return None
        return None

    return SeqSpec(name, (initial, frozenset()), apply)


def auditable_max_register_spec(
    initial: Any,
    reader_index: Dict[str, int],
    name: str = "auditable_max_register",
) -> SeqSpec:
    """Auditable max register: like the register spec but monotone."""

    def apply(state, op_name, args, result):
        value, pairs = state
        if op_name in ("write_max", "writeMax"):
            return (max(value, args[0]), pairs)
        if op_name == "read":
            if result is not PENDING and result != value:
                return None
            j = reader_index[args[0]]
            return (value, pairs | {(j, value)})
        if op_name == "audit":
            if result is PENDING or result == pairs:
                return state
            return None
        return None

    return SeqSpec(name, (initial, frozenset()), apply)


def snapshot_spec(
    components: int,
    initial: Any,
    updater_index: Dict[str, int],
    scanner_index: Optional[Dict[str, int]] = None,
    name: str = "snapshot",
) -> SeqSpec:
    """(Auditable) snapshot: state is ``(view, frozenset((j, view)))``.

    ``update``/``scan`` operations must be tagged with their pid
    (:func:`tag_ops_with_pid`); scan results must equal the current
    view; audit results must equal the pair set of preceding scans.
    """
    scanner_index = scanner_index or {}

    def apply(state, op_name, args, result):
        view, pairs = state
        if op_name == "update":
            value, pid = args[0], args[-1]
            i = updater_index[pid]
            new_view = view[:i] + (value,) + view[i + 1:]
            return (new_view, pairs)
        if op_name == "scan":
            if result is not PENDING and result != view:
                return None
            pid = args[-1] if args else None
            if pid in scanner_index:
                return (view, pairs | {(scanner_index[pid], view)})
            return state
        if op_name == "audit":
            if result is PENDING or result == pairs:
                return state
            return None
        return None

    return SeqSpec(name, ((initial,) * components, frozenset()), apply)


def versioned_spec(
    type_spec,
    reader_index: Dict[str, int],
    name: Optional[str] = None,
) -> SeqSpec:
    """Auditable versioned type (Theorem 13): state is
    ``(q, frozenset((j, out)))`` for a
    :class:`~repro.core.versioned.TypeSpec`.

    ``update(v)`` applies ``g``; tagged reads return ``f(q)`` and add
    their pair; audits must equal the pair set.
    """

    def apply(state, op_name, args, result):
        q, pairs = state
        if op_name == "update":
            return (type_spec.apply_update(args[0], q), pairs)
        if op_name == "read":
            out = type_spec.read_out(q)
            if result is not PENDING and result != out:
                return None
            j = reader_index[args[0]]
            return (q, pairs | {(j, out)})
        if op_name == "audit":
            if result is PENDING or result == pairs:
                return state
            return None
        return None

    return SeqSpec(
        name or f"auditable_{type_spec.name}",
        (type_spec.initial_state, frozenset()),
        apply,
    )


def stream_register_spec(
    initial: Any, name: str = "stream_register"
) -> SeqSpec:
    """Value-only auditable-register spec for *streaming* validation.

    The full :func:`auditable_register_spec` state carries the set of
    all ``(reader, value)`` pairs, which grows with every distinct read
    — sound for bounded histories, hopeless for million-op streams.
    This spec keeps only the register value: reads are checked exactly,
    audits are accepted unconditionally.  Audit exactness is *not*
    weakened — it moves to the syntactic
    :class:`~repro.analysis.audit_checks.WindowedAuditOracle`, which
    Theorem 8 proves equivalent on fetch&xor-based implementations.
    No reader tagging is needed, so the spec composes with untagged
    event streams.
    """

    def apply(state, op_name, args, result):
        if op_name == "write":
            return args[0]
        if op_name == "read":
            if result is PENDING or result == state:
                return state
            return None
        if op_name == "audit":
            return state
        return None

    return SeqSpec(name, initial, apply)


def stream_max_register_spec(
    initial: Any, name: str = "stream_max_register"
) -> SeqSpec:
    """Value-only auditable-max-register spec (see
    :func:`stream_register_spec` for why audits pass unchecked)."""

    def apply(state, op_name, args, result):
        if op_name in ("write_max", "writeMax"):
            return max(state, args[0])
        if op_name == "read":
            if result is PENDING or result == state:
                return state
            return None
        if op_name == "audit":
            return state
        return None

    return SeqSpec(name, initial, apply)


def stream_snapshot_spec(
    components: int,
    initial: Any,
    updater_index: Dict[str, int],
    name: str = "stream_snapshot",
) -> SeqSpec:
    """View-only snapshot spec for streaming validation.

    ``update`` operations must be pid-tagged
    (:func:`tag_ops_with_pid` offline, ``tag=`` hook of the streaming
    checker online); scans check the full view; audits pass unchecked
    (the lifted windowed audit oracle covers them).
    """

    def apply(state, op_name, args, result):
        if op_name == "update":
            value, pid = args[0], args[-1]
            i = updater_index[pid]
            return state[:i] + (value,) + state[i + 1:]
        if op_name == "scan":
            if result is PENDING or result == state:
                return state
            return None
        if op_name == "audit":
            return state
        return None

    return SeqSpec(name, (initial,) * components, apply)


def register_array_spec(
    initial: Any = 0, name: str = "register_array"
) -> SeqSpec:
    """Array of independent registers: ``write(cell, v)`` / ``read(cell)``.

    Every operation touches exactly one cell, so the spec declares the
    P-compositionality hooks: :class:`~repro.analysis.fastlin.
    FastLinChecker` partitions the history per cell and checks each
    projection against a plain per-cell register spec, turning one
    exponential search into many small ones.  The global ``apply``
    (state: sorted tuple of ``(cell, value)`` pairs) is also provided,
    so partition-unaware checkers -- e.g. the legacy reference oracle --
    verify the *same* spec object; differential tests compare the two
    paths directly.
    """

    def global_apply(state, op_name, args, result):
        cells = dict(state)
        cell = args[0]
        current = cells.get(cell, initial)
        if op_name == "write":
            cells[cell] = args[1]
            return tuple(sorted(cells.items(), key=repr))
        if op_name == "read":
            if result is PENDING or result == current:
                return state
            return None
        return None

    def cell_spec(cell: Any) -> SeqSpec:
        def apply(state, op_name, args, result):
            if op_name == "write":
                return args[1]
            if op_name == "read":
                if result is PENDING or result == state:
                    return state
                return None
            return None

        return SeqSpec(f"{name}[{cell!r}]", initial, apply)

    return SeqSpec(
        name,
        (),
        global_apply,
        partition_key=lambda op_name, args: args[0],
        partition_spec=cell_spec,
    )


def tag_reads(operations):
    """Copies of the operations with each read's args set to ``(pid,)``."""
    tagged = []
    for op in operations:
        if op.name == "read" and not op.args:
            op = replace(op, args=(op.pid,), primitives=list(op.primitives))
        tagged.append(op)
    return tagged


def tag_ops_with_pid(operations, names=("update", "scan")):
    """Copies of the operations with the pid appended to selected ops."""
    tagged = []
    for op in operations:
        if op.name in names:
            op = replace(
                op, args=op.args + (op.pid,), primitives=list(op.primitives)
            )
        tagged.append(op)
    return tagged
