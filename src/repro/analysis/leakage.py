"""Honest-but-curious leakage analysis.

The paper's uncompromised-operation properties (Definition 3, Lemmas 6,
7 and 38) are statements about *indistinguishability*: for everything a
curious reader did not effectively read, there exists another execution,
identical in the reader's eyes, where it never happened.

Two complementary checks:

1. **Constructive pairing** -- run the paper's paired execution
   explicitly (same seeds, with the single change the lemma prescribes:
   a write input replaced, a reader's read removed plus the pad bit
   flipped, a ``writeMax`` input lowered with a larger nonce) and verify
   the observer's projections are *identical*.  This mechanises the
   lemma proofs.
2. **Statistical attack** -- a deterministic attacker guesses a secret
   bit (did reader k read?  was v+1 written?) from an observer's view;
   the empirical advantage over coin-flipping, across many seeds, must
   be ~0 for Algorithms 1/2 and ~1 for the leaky baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.sim.history import History


def projections_equal(h1: History, h2: History, pid: str) -> bool:
    """alpha ~p beta: the observer's local views coincide."""
    return h1.projection(pid) == h2.projection(pid)


def first_divergence(
    h1: History, h2: History, pid: str
) -> Optional[Tuple[int, Any, Any]]:
    """Index and contents of the first differing view entry, if any."""
    v1 = h1.projection(pid)
    v2 = h2.projection(pid)
    for i, (a, b) in enumerate(zip(v1, v2)):
        if a != b:
            return (i, a, b)
    if len(v1) != len(v2):
        i = min(len(v1), len(v2))
        return (
            i,
            v1[i] if i < len(v1) else None,
            v2[i] if i < len(v2) else None,
        )
    return None


def observed_values(history: History, pid: str, register) -> set:
    """Every register value that appears anywhere in ``pid``'s view.

    The register ``R`` is the only shared variable holding write inputs
    that readers access; a value the reader never observed there cannot
    have been learned (Lemma 6's argument).  Values are decoded (nonces
    stripped) before comparison.
    """
    values = set()
    for event in history.primitive_events(pid=pid, obj_name=register.R.name):
        word = event.result
        if word is not None and hasattr(word, "val"):
            values.add(register._decode_value(word.val))
    return values


@dataclass
class AttackOutcome:
    """One trial of a statistical attack."""

    secret: Any
    guess: Any

    @property
    def correct(self) -> bool:
        return self.secret == self.guess


def empirical_advantage(outcomes: Sequence[AttackOutcome]) -> float:
    """|2 * Pr[guess correct] - 1| over the trials (0 = blind, 1 = full
    knowledge), for binary secrets."""
    if not outcomes:
        return 0.0
    correct = sum(1 for o in outcomes if o.correct)
    return abs(2.0 * correct / len(outcomes) - 1.0)


def success_rate(outcomes: Sequence[AttackOutcome]) -> float:
    if not outcomes:
        return 0.0
    return sum(1 for o in outcomes if o.correct) / len(outcomes)


def tracking_bits_seen(history: History, pid: str, register) -> List[int]:
    """The raw tracking-bit words ``pid`` observed on ``R``.

    Under Algorithm 1 these are one-time-pad ciphertexts; under the
    naive baseline they are plaintext reader sets.  Attackers build
    their guesses from these.
    """
    bits = []
    for event in history.primitive_events(pid=pid, obj_name=register.R.name):
        word = event.result
        if word is not None and hasattr(word, "bits"):
            bits.append(word.bits)
    return bits


def membership_guess(bits_seen: List[int], target_reader: int) -> bool:
    """The strongest generic single-sample guesser: take the target's bit
    of the last observed tracking word at face value.

    Correct with probability 1 on plaintext reader sets; correct with
    probability exactly 1/2 on one-time-pad ciphertext.
    """
    if not bits_seen:
        return False
    return bool(bits_seen[-1] >> target_reader & 1)
