"""Wing-Gong linearizability checking -- legacy shim over ``fastlin``.

.. deprecated::
    The naive Wing-Gong search grew into a high-performance
    verification core: integer-bitmask done-sets, precomputed
    precedence bitmasks, forced-operation (Lowe-style) pruning,
    P-compositional partitioning and a batched parallel verdict
    service now live in :mod:`repro.analysis.fastlin`.  This module
    keeps the original API working: ``check_history`` and
    :class:`LinearizabilityChecker` delegate to the new checker and
    preserve the historical budget contract (a ``max_nodes`` overrun
    **raises** ``RuntimeError`` here, where the new API returns a
    structured ``status == "undecided"`` result).

    New code should call :func:`repro.analysis.fastlin.check_history`
    directly, or ``python -m repro lin`` from the command line.

The original O(n^2)-precedence, frozenset-memoised search survives as
:func:`legacy_check_history`: it is the executable reference the
property tests differentially check the rewrite against, and the
baseline ``benchmarks/bench_b10_lin_throughput.py`` measures the
speedup from.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Set, Tuple

# Re-exported for backward compatibility: these are the same objects
# the new core defines (SeqSpec gained optional P-compositionality
# hooks; existing constructors are unchanged).
from repro.analysis.fastlin import (  # noqa: F401
    LIN_UNDECIDED,
    PENDING,
    FastLinChecker,
    LinearizationResult,
    SeqSpec,
)
from repro.sim.history import OperationRecord


class LinearizabilityChecker:
    """Checks one object's history against a sequential spec.

    Deprecated alias for :class:`repro.analysis.fastlin.FastLinChecker`
    with the historical budget behaviour: exceeding ``max_nodes``
    raises ``RuntimeError`` instead of returning an undecided result.
    """

    def __init__(self, spec: SeqSpec, max_nodes: int = 2_000_000) -> None:
        self.spec = spec
        self.max_nodes = max_nodes

    def check(
        self, operations: Sequence[OperationRecord]
    ) -> LinearizationResult:
        result = FastLinChecker(self.spec, self.max_nodes).check(operations)
        if result.status == LIN_UNDECIDED:
            raise RuntimeError(
                f"linearizability search exceeded {self.max_nodes} "
                "nodes; reduce history size"
            )
        return result


def check_history(
    operations: Sequence[OperationRecord], spec: SeqSpec
) -> LinearizationResult:
    """Convenience wrapper (historical raising-budget contract)."""
    return LinearizabilityChecker(spec).check(operations)


def legacy_check_history(
    operations: Sequence[OperationRecord],
    spec: SeqSpec,
    max_nodes: int = 2_000_000,
) -> LinearizationResult:
    """The original naive Wing-Gong search, kept as a reference oracle.

    O(n^2) pairwise ``precedes`` precomputation, full eligibility
    rescans, ``order + [i]`` list copies and frozenset-keyed
    memoisation -- exactly the seed implementation.  The fastlin
    property tests cross-check the rewrite against this function, and
    ``bench_b10`` measures the rewrite's speedup relative to it.
    Partitioning hooks on ``spec`` are ignored (the global ``apply``
    is used), which is what makes differential runs meaningful.
    """
    ops = list(operations)
    n = len(ops)
    if n == 0:
        return LinearizationResult(True, [])
    preds: List[Set[int]] = [set() for _ in range(n)]
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and a.precedes(b):
                preds[j].add(i)
    complete = [i for i, op in enumerate(ops) if op.is_complete]
    explored = 0
    seen: Set[Tuple[frozenset, Any]] = set()

    def eligible(done: Set[int]) -> List[int]:
        return [
            i
            for i in range(n)
            if i not in done and preds[i] <= done
        ]

    stack: List[Tuple[frozenset, Any, List[int]]] = []
    seen.add((frozenset(), spec.initial))
    stack.append((frozenset(), spec.initial, []))
    while stack:
        done, state, order = stack.pop()
        explored += 1
        if explored > max_nodes:
            raise RuntimeError(
                f"linearizability search exceeded {max_nodes} "
                "nodes; reduce history size"
            )
        if all(i in done for i in complete):
            return LinearizationResult(
                True, [ops[i] for i in order], explored
            )
        for i in eligible(set(done)):
            op = ops[i]
            result = op.result if op.is_complete else PENDING
            new_state = spec.apply(state, op.name, op.args, result)
            if new_state is None:
                continue
            new_done = done | {i}
            key = (new_done, new_state)
            if key in seen:
                continue
            seen.add(key)
            stack.append((new_done, new_state, order + [i]))
    return LinearizationResult(False, None, explored)
