"""Wing-Gong linearizability checking.

Given the operations recorded in a history and a sequential
specification, search for a *linearization* (Definition 1): a sequential
order containing all complete operations and a subset of the pending
ones, extending the real-time precedence order, and conforming to the
spec.

The search is exponential in the worst case but histories checked in the
experiments are small (tens of operations with bounded concurrency);
memoisation on (set of linearized operations, spec state) keeps it fast
in practice.

Pending operations never observed a response; the checker may either
drop them or linearize them with *any* result the spec allows
(``result=PENDING``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro.sim.history import OperationRecord


class _Pending:
    def __repr__(self) -> str:
        return "<pending>"


PENDING = _Pending()


@dataclass(frozen=True)
class SeqSpec:
    """A sequential specification.

    ``apply(state, name, args, result)`` returns the successor state if
    the operation with the given result is legal in ``state``, else
    ``None``.  When ``result is PENDING`` the operation never returned:
    the spec should accept it with any legal return value (for total
    operations this means: accept, return the successor state for the
    canonical result).

    States must be hashable (used as memoisation keys).
    """

    name: str
    initial: Any
    apply: Callable[[Any, str, Tuple[Any, ...], Any], Optional[Any]]


@dataclass
class LinearizationResult:
    ok: bool
    order: Optional[List[OperationRecord]] = None
    explored: int = 0

    def __bool__(self) -> bool:
        return self.ok


class LinearizabilityChecker:
    """Checks one object's history against a sequential spec."""

    def __init__(self, spec: SeqSpec, max_nodes: int = 2_000_000) -> None:
        self.spec = spec
        self.max_nodes = max_nodes

    def check(
        self, operations: Sequence[OperationRecord]
    ) -> LinearizationResult:
        ops = list(operations)
        n = len(ops)
        if n == 0:
            return LinearizationResult(True, [])
        # Precompute the predecessor sets under real-time order.
        preds: List[Set[int]] = [set() for _ in range(n)]
        for i, a in enumerate(ops):
            for j, b in enumerate(ops):
                if i != j and a.precedes(b):
                    preds[j].add(i)
        complete = [i for i, op in enumerate(ops) if op.is_complete]
        explored = 0
        seen: Set[Tuple[frozenset, Any]] = set()

        # Depth-first search over (linearized set, spec state).
        # Complete ops must all be linearized; pending ops are optional
        # but, once every complete op is placed, we succeed immediately
        # (remaining pending ops are simply dropped).
        def eligible(done: Set[int]) -> List[int]:
            return [
                i
                for i in range(n)
                if i not in done and preds[i] <= done
            ]

        stack: List[Tuple[frozenset, Any, List[int]]] = []
        initial_key = (frozenset(), self.spec.initial)
        seen.add(self._key(frozenset(), self.spec.initial))
        stack.append((frozenset(), self.spec.initial, []))
        while stack:
            done, state, order = stack.pop()
            explored += 1
            if explored > self.max_nodes:
                raise RuntimeError(
                    f"linearizability search exceeded {self.max_nodes} "
                    "nodes; reduce history size"
                )
            if all(i in done for i in complete):
                return LinearizationResult(
                    True, [ops[i] for i in order], explored
                )
            for i in eligible(set(done)):
                op = ops[i]
                result = op.result if op.is_complete else PENDING
                new_state = self.spec.apply(state, op.name, op.args, result)
                if new_state is None:
                    continue
                new_done = done | {i}
                key = self._key(new_done, new_state)
                if key in seen:
                    continue
                seen.add(key)
                stack.append((new_done, new_state, order + [i]))
        return LinearizationResult(False, None, explored)

    @staticmethod
    def _key(done: frozenset, state: Any) -> Tuple:
        return (done, state)


def check_history(
    operations: Sequence[OperationRecord], spec: SeqSpec
) -> LinearizationResult:
    """Convenience wrapper."""
    return LinearizabilityChecker(spec).check(operations)
