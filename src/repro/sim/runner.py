"""The simulation driver: processes + schedule -> history.

One :meth:`Simulation.step` performs, for the chosen process, exactly one
of:

- *invocation*: start the process's next operation and run its local
  computation up to the first primitive (no primitive executes);
- *primitive*: atomically apply the pending primitive, record it, and run
  local computation up to the next suspension; if the operation finishes,
  record its response in the same step.

This matches the paper's step granularity (local computation is free;
one primitive per step), while giving fine-grained control: attacks pause
or crash processes between specific primitives, and experiments can
single-step executions to place linearization points precisely.

The generator-driving protocol itself (resume up to the next suspension,
enforce that only :class:`PendingPrimitive` is yielded, capture the
return value) is runtime-neutral and lives in
:func:`drive_to_suspension`, shared with the thread-backed runtime
(:mod:`repro.rt`): the simulator is one backend of the runtime seam, not
the owner of the execution contract.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.events import PendingPrimitive
from repro.sim.history import History
from repro.sim.process import Op, Process, ProcessState
from repro.sim.scheduler import (
    CrashDecision,
    DelayDecision,
    DuplicateDecision,
    OmitDecision,
    PartitionDecision,
    RecoverDecision,
    RoundRobinSchedule,
    Schedule,
)


def drive_to_suspension(
    pid: str,
    gen: Generator,
    value: Any = None,
    *,
    first: bool = False,
) -> Tuple[bool, Any]:
    """Advance an operation generator to its next suspension point.

    Sends ``value`` into ``gen`` (or primes it when ``first``) and
    returns ``(True, PendingPrimitive)`` if the operation suspended on a
    primitive, or ``(False, result)`` if it finished.  Every runtime
    backend drives operations through here, so the
    one-primitive-per-suspension contract is enforced identically under
    the simulator and under real threads.
    """
    try:
        yielded = next(gen) if first else gen.send(value)
    except StopIteration as stop:
        return False, stop.value
    if not isinstance(yielded, PendingPrimitive):
        raise TypeError(
            f"{pid} yielded {yielded!r}; algorithm code must "
            "yield PendingPrimitive (use `yield from obj.primitive()`)"
        )
    return True, yielded


def drive_op(
    pid: str,
    op: Op,
    apply: Callable[[PendingPrimitive], Any],
) -> Any:
    """Drive one operation to completion; return the operation's result.

    Every yielded primitive goes through ``apply``, which executes it
    atomically (however the backend defines atomicity: under a
    per-object lock on the thread runtime, as a message round-trip to
    the memory server on the process runtime) and returns its result.
    ``apply`` may raise to abandon the operation (e.g. when the memory
    server crashed the process mid-operation); the generator is closed
    and the exception propagates.
    """
    gen = op.start()
    try:
        suspended, payload = drive_to_suspension(pid, gen, first=True)
        while suspended:
            result = apply(payload)
            suspended, payload = drive_to_suspension(pid, gen, result)
    finally:
        gen.close()
    return payload


class StepBudgetExceeded(RuntimeError):
    """Raised when a simulation exceeds its step budget.

    For wait-free algorithms this indicates a bug (or a deliberately
    unfair experiment); the wait-freedom tests rely on generous budgets
    never being hit.
    """


class Simulation:
    """A shared-memory system: a set of processes and a schedule."""

    def __init__(
        self,
        schedule: Optional[Schedule] = None,
        max_steps: int = 1_000_000,
    ) -> None:
        self.schedule = schedule or RoundRobinSchedule()
        self.max_steps = max_steps
        self.history = History()
        self.processes: Dict[str, Process] = {}
        self._steps_taken = 0
        # Incrementally maintained: pid -> process for every process with
        # work, plus a lazily rebuilt pid-sorted view.  Membership changes
        # only on assign / operation finish / crash (the Process watcher
        # hook), so the per-step cost is a cache lookup, not a scan.
        self._runnable: Dict[str, Process] = {}
        self._runnable_sorted: Optional[List[Process]] = None
        # Fault-injection state.  _partitioned maps pid -> last step at
        # which the pid is still severed from memory; _last_applied maps
        # pid -> its most recently applied primitive (op_id, obj,
        # primitive, args), the message a DuplicateDecision re-delivers.
        self._partitioned: Dict[str, int] = {}
        self._last_applied: Dict[str, Tuple[int, Any, str, Tuple]] = {}

    # -- construction -----------------------------------------------------

    def spawn(self, pid: str) -> Process:
        """Create a process; pids must be unique."""
        if pid in self.processes:
            raise ValueError(f"duplicate pid {pid!r}")
        process = Process(pid=pid)
        process._watcher = self._work_changed
        self.processes[pid] = process
        return process

    def add_program(self, pid: str, ops: List[Op]) -> Process:
        """Spawn (or extend) a process with a list of operations."""
        process = self.processes.get(pid) or self.spawn(pid)
        process.assign(ops)
        return process

    # -- control ----------------------------------------------------------

    def crash(self, pid: str) -> None:
        """Stop a process; its pending operation stays pending forever.

        Models the honest-but-curious attacker that "stops prematurely"
        as well as ordinary crash failures.
        """
        process = self.processes[pid]
        op_id = process.current_op_id
        process._crash()
        self.history.record_crash(pid, op_id)

    def recover(self, pid: str) -> None:
        """Restart a crashed process from a fresh replica.

        The crashed operation stays pending; the process resumes with
        the next operation of its program under the same pid (fresh
        op_ids, so the checkers see an ordinary process with one more
        pending operation).  No history event is recorded: recovery is
        visible only through the process invoking operations again.
        """
        self.processes[pid]._recover()

    def duplicate(self, pid: str) -> None:
        """Re-deliver ``pid``'s most recently applied primitive.

        The memory applies the duplicated message again and the second
        application is recorded under the original operation, keeping
        the per-object log equal to the true application order (the
        audit oracle's soundness condition).  The process never sees
        the duplicate's result.
        """
        entry = self._last_applied.get(pid)
        if entry is None:
            raise ValueError(
                f"{pid!r} has no applied primitive to re-deliver"
            )
        op_id, obj, primitive, args = entry
        result = obj.apply(primitive, args)
        self.history.record_primitive(
            pid, op_id, obj.name, primitive, args, result
        )

    def omit(self, pid: str) -> None:
        """Drop ``pid``'s in-flight primitive: the request is never
        applied and the operation is abandoned (stays pending)."""
        self.processes[pid]._abandon_op()

    def partition(self, pids, steps: int = 4) -> None:
        """Sever ``pids`` from memory for the next ``steps`` steps.

        Unknown pids are ignored (partitioning a process that does not
        exist is a no-op, like partitioning an empty network segment);
        overlapping partitions extend, never shorten.
        """
        heal_at = self._steps_taken + steps
        for pid in pids:
            if pid in self.processes:
                current = self._partitioned.get(pid, 0)
                self._partitioned[pid] = max(current, heal_at)

    def is_partitioned(self, pid: str) -> bool:
        """Would ``pid`` be hidden from the schedule at the next step?

        Accounts for healing (the partition may expire by then) and the
        flush-on-idle rule (a partition covering every process with
        work heals immediately rather than deadlocking the run).
        """
        horizon = self._steps_taken + 1
        self._heal_expired(horizon)
        if pid not in self._partitioned:
            return False
        runnable = self._runnable_view()
        if runnable and all(p.pid in self._partitioned for p in runnable):
            return False
        return True

    def duplicable_pids(self) -> List[str]:
        """Pids with an applied primitive a duplicate could re-deliver."""
        return sorted(self._last_applied)

    def recoverable_pids(self) -> List[str]:
        """Crashed pids with program left to resume."""
        return sorted(
            pid
            for pid, process in self.processes.items()
            if process.state is ProcessState.CRASHED
            and process.remaining_ops() > 0
        )

    def _heal_expired(self, horizon: int) -> None:
        expired = [
            pid
            for pid, heal_at in self._partitioned.items()
            if horizon > heal_at
        ]
        for pid in expired:
            del self._partitioned[pid]

    def _visible_runnable(self, horizon: int) -> List[Process]:
        """The runnable view minus partitioned pids, with healing.

        When the partition covers everything runnable, it heals in full
        (the simulator analogue of the memory server flushing parked
        requests once no other traffic remains): partitions stall
        progress, they never wedge a run.
        """
        runnable = self._runnable_view()
        if not self._partitioned:
            return runnable
        self._heal_expired(horizon)
        if not self._partitioned:
            return runnable
        visible = [p for p in runnable if p.pid not in self._partitioned]
        if not visible and runnable:
            self._partitioned.clear()
            return runnable
        return visible

    def schedulable(self) -> List[Process]:
        """The processes the schedule could be offered at the next step
        (the runnable view minus currently partitioned pids)."""
        return list(self._visible_runnable(self._steps_taken + 1))

    def _work_changed(self, process: Process) -> None:
        """Watcher hook: keep the runnable set in sync with one process."""
        if process.has_work():
            if process.pid not in self._runnable:
                self._runnable[process.pid] = process
                self._runnable_sorted = None
        elif self._runnable.pop(process.pid, None) is not None:
            self._runnable_sorted = None

    def _runnable_view(self) -> List[Process]:
        """The pid-sorted runnable list; owned by the simulation.

        Rebuilt only when membership changed since the last step, so
        schedulers receive an already-sorted list they must not mutate.
        """
        view = self._runnable_sorted
        if view is None:
            view = self._runnable_sorted = sorted(
                self._runnable.values(), key=lambda p: p.pid
            )
        return view

    def runnable(self) -> List[Process]:
        return list(self._runnable_view())

    def step(self) -> bool:
        """Advance one scheduler step.  Returns False when nothing runs."""
        runnable = self._runnable_view()
        if not runnable:
            return False
        if self._steps_taken >= self.max_steps:
            raise StepBudgetExceeded(
                f"exceeded {self.max_steps} steps; pending processes: "
                f"{[p.pid for p in runnable]}"
            )
        self._steps_taken += 1
        visible = self._visible_runnable(self._steps_taken)
        chosen = self.schedule.choose(visible, self._steps_taken)
        if isinstance(chosen, Process):
            self._advance(chosen)
        else:
            # The schedule-injection hook for fault-exploring adversaries
            # (repro.fuzz): the step is consumed by the fault.
            self._apply_fault(chosen)
        return True

    def step_process(self, pid: str) -> bool:
        """Advance a specific process one step (bypassing the schedule).

        Used by attacks and hand-crafted interleavings.  Returns False if
        the process has no work.
        """
        process = self.processes[pid]
        if not process.has_work():
            return False
        self._steps_taken += 1
        self._advance(process)
        return True

    def run(self, max_steps: Optional[int] = None) -> History:
        """Run until all processes finish (or the budget is exhausted)."""
        remaining = max_steps
        while True:
            if remaining is not None:
                if remaining <= 0:
                    break
                remaining -= 1
            if not self.step():
                break
        return self.history

    def run_process(self, pid: str, ops: Optional[int] = None) -> History:
        """Run a single process to completion of ``ops`` operations
        (all remaining when None), ignoring the schedule."""
        process = self.processes[pid]
        target = (
            None
            if ops is None
            else process._op_counter + ops - (1 if process.gen else 0)
        )
        while process.has_work():
            if (
                target is not None
                and process.gen is None
                and process._op_counter >= target
            ):
                break
            self.step_process(pid)
        return self.history

    @property
    def steps_taken(self) -> int:
        return self._steps_taken

    def inject(self, decision) -> None:
        """Apply a fault decision outside the schedule seam.

        Consumes one step, exactly as if :meth:`step` had chosen the
        decision — the lenient replayer (:func:`repro.fuzz.executor.
        run_decisions_lenient`) uses this so shrunken candidate
        sequences account steps identically to a strict replay.
        """
        if self._steps_taken >= self.max_steps:
            raise StepBudgetExceeded(
                f"exceeded {self.max_steps} steps injecting {decision!r}"
            )
        self._steps_taken += 1
        self._apply_fault(decision)

    def _apply_fault(self, decision) -> None:
        if isinstance(decision, CrashDecision):
            self.crash(decision.pid)
        elif isinstance(decision, RecoverDecision):
            self.recover(decision.pid)
        elif isinstance(decision, DuplicateDecision):
            self.duplicate(decision.pid)
        elif isinstance(decision, OmitDecision):
            self.omit(decision.pid)
        elif isinstance(decision, PartitionDecision):
            self.partition(decision.pids, decision.steps)
        elif isinstance(decision, DelayDecision):
            # In the simulator a delay is the schedule not choosing the
            # process; the decision just consumes the step.
            pass
        else:
            raise TypeError(
                f"schedule returned {decision!r}; expected a Process or "
                "a fault decision"
            )

    # -- internals ---------------------------------------------------------

    def _advance(self, process: Process) -> None:
        if process.gen is None:
            op = process._begin_next_op()
            self.history.record_invocation(
                process.pid, process.current_op_id, op.name, op.args
            )
            self._resume(process, first=True)
        else:
            pending = process.pending
            if pending is None:
                raise RuntimeError(
                    f"{process.pid} is mid-operation without a pending "
                    "primitive; algorithm generators must yield "
                    "PendingPrimitive"
                )
            result = self._apply(process, pending)
            self._resume(process, value=result)

    def _apply(self, process: Process, pending: PendingPrimitive) -> Any:
        result = pending.obj.apply(pending.primitive, pending.args)
        self.history.record_primitive(
            process.pid,
            process.current_op_id,
            pending.obj.name,
            pending.primitive,
            pending.args,
            result,
        )
        # The most recent applied message per pid; a DuplicateDecision
        # re-delivers exactly this.
        self._last_applied[process.pid] = (
            process.current_op_id,
            pending.obj,
            pending.primitive,
            pending.args,
        )
        process.steps_in_current_op += 1
        # The replay log makes the generator's control state rebuildable
        # (see repro.sim.checkpoint): ops are deterministic functions of
        # the primitive results they were sent.
        process._replay_log.append(result)
        return result

    def _resume(
        self, process: Process, value: Any = None, first: bool = False
    ) -> None:
        suspended, payload = drive_to_suspension(
            process.pid, process.gen, value, first=first
        )
        if not suspended:
            self.history.record_response(
                process.pid,
                process.current_op_id,
                process.current_op.name,
                payload,
            )
            process._finish_op()
            return
        process.pending = payload
