"""The simulation driver: processes + schedule -> history.

One :meth:`Simulation.step` performs, for the chosen process, exactly one
of:

- *invocation*: start the process's next operation and run its local
  computation up to the first primitive (no primitive executes);
- *primitive*: atomically apply the pending primitive, record it, and run
  local computation up to the next suspension; if the operation finishes,
  record its response in the same step.

This matches the paper's step granularity (local computation is free;
one primitive per step), while giving fine-grained control: attacks pause
or crash processes between specific primitives, and experiments can
single-step executions to place linearization points precisely.

The generator-driving protocol itself (resume up to the next suspension,
enforce that only :class:`PendingPrimitive` is yielded, capture the
return value) is runtime-neutral and lives in
:func:`drive_to_suspension`, shared with the thread-backed runtime
(:mod:`repro.rt`): the simulator is one backend of the runtime seam, not
the owner of the execution contract.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.events import PendingPrimitive
from repro.sim.history import History
from repro.sim.process import Op, Process, ProcessState
from repro.sim.scheduler import CrashDecision, RoundRobinSchedule, Schedule


def drive_to_suspension(
    pid: str,
    gen: Generator,
    value: Any = None,
    *,
    first: bool = False,
) -> Tuple[bool, Any]:
    """Advance an operation generator to its next suspension point.

    Sends ``value`` into ``gen`` (or primes it when ``first``) and
    returns ``(True, PendingPrimitive)`` if the operation suspended on a
    primitive, or ``(False, result)`` if it finished.  Every runtime
    backend drives operations through here, so the
    one-primitive-per-suspension contract is enforced identically under
    the simulator and under real threads.
    """
    try:
        yielded = next(gen) if first else gen.send(value)
    except StopIteration as stop:
        return False, stop.value
    if not isinstance(yielded, PendingPrimitive):
        raise TypeError(
            f"{pid} yielded {yielded!r}; algorithm code must "
            "yield PendingPrimitive (use `yield from obj.primitive()`)"
        )
    return True, yielded


def drive_op(
    pid: str,
    op: Op,
    apply: Callable[[PendingPrimitive], Any],
) -> Any:
    """Drive one operation to completion; return the operation's result.

    Every yielded primitive goes through ``apply``, which executes it
    atomically (however the backend defines atomicity: under a
    per-object lock on the thread runtime, as a message round-trip to
    the memory server on the process runtime) and returns its result.
    ``apply`` may raise to abandon the operation (e.g. when the memory
    server crashed the process mid-operation); the generator is closed
    and the exception propagates.
    """
    gen = op.start()
    try:
        suspended, payload = drive_to_suspension(pid, gen, first=True)
        while suspended:
            result = apply(payload)
            suspended, payload = drive_to_suspension(pid, gen, result)
    finally:
        gen.close()
    return payload


class StepBudgetExceeded(RuntimeError):
    """Raised when a simulation exceeds its step budget.

    For wait-free algorithms this indicates a bug (or a deliberately
    unfair experiment); the wait-freedom tests rely on generous budgets
    never being hit.
    """


class Simulation:
    """A shared-memory system: a set of processes and a schedule."""

    def __init__(
        self,
        schedule: Optional[Schedule] = None,
        max_steps: int = 1_000_000,
    ) -> None:
        self.schedule = schedule or RoundRobinSchedule()
        self.max_steps = max_steps
        self.history = History()
        self.processes: Dict[str, Process] = {}
        self._steps_taken = 0
        # Incrementally maintained: pid -> process for every process with
        # work, plus a lazily rebuilt pid-sorted view.  Membership changes
        # only on assign / operation finish / crash (the Process watcher
        # hook), so the per-step cost is a cache lookup, not a scan.
        self._runnable: Dict[str, Process] = {}
        self._runnable_sorted: Optional[List[Process]] = None

    # -- construction -----------------------------------------------------

    def spawn(self, pid: str) -> Process:
        """Create a process; pids must be unique."""
        if pid in self.processes:
            raise ValueError(f"duplicate pid {pid!r}")
        process = Process(pid=pid)
        process._watcher = self._work_changed
        self.processes[pid] = process
        return process

    def add_program(self, pid: str, ops: List[Op]) -> Process:
        """Spawn (or extend) a process with a list of operations."""
        process = self.processes.get(pid) or self.spawn(pid)
        process.assign(ops)
        return process

    # -- control ----------------------------------------------------------

    def crash(self, pid: str) -> None:
        """Stop a process; its pending operation stays pending forever.

        Models the honest-but-curious attacker that "stops prematurely"
        as well as ordinary crash failures.
        """
        process = self.processes[pid]
        op_id = process.current_op_id
        process._crash()
        self.history.record_crash(pid, op_id)

    def _work_changed(self, process: Process) -> None:
        """Watcher hook: keep the runnable set in sync with one process."""
        if process.has_work():
            if process.pid not in self._runnable:
                self._runnable[process.pid] = process
                self._runnable_sorted = None
        elif self._runnable.pop(process.pid, None) is not None:
            self._runnable_sorted = None

    def _runnable_view(self) -> List[Process]:
        """The pid-sorted runnable list; owned by the simulation.

        Rebuilt only when membership changed since the last step, so
        schedulers receive an already-sorted list they must not mutate.
        """
        view = self._runnable_sorted
        if view is None:
            view = self._runnable_sorted = sorted(
                self._runnable.values(), key=lambda p: p.pid
            )
        return view

    def runnable(self) -> List[Process]:
        return list(self._runnable_view())

    def step(self) -> bool:
        """Advance one scheduler step.  Returns False when nothing runs."""
        runnable = self._runnable_view()
        if not runnable:
            return False
        if self._steps_taken >= self.max_steps:
            raise StepBudgetExceeded(
                f"exceeded {self.max_steps} steps; pending processes: "
                f"{[p.pid for p in runnable]}"
            )
        self._steps_taken += 1
        chosen = self.schedule.choose(runnable, self._steps_taken)
        if isinstance(chosen, CrashDecision):
            # The schedule-injection hook for fault-exploring adversaries
            # (repro.fuzz): the step is consumed by the crash.
            self.crash(chosen.pid)
            return True
        self._advance(chosen)
        return True

    def step_process(self, pid: str) -> bool:
        """Advance a specific process one step (bypassing the schedule).

        Used by attacks and hand-crafted interleavings.  Returns False if
        the process has no work.
        """
        process = self.processes[pid]
        if not process.has_work():
            return False
        self._steps_taken += 1
        self._advance(process)
        return True

    def run(self, max_steps: Optional[int] = None) -> History:
        """Run until all processes finish (or the budget is exhausted)."""
        remaining = max_steps
        while True:
            if remaining is not None:
                if remaining <= 0:
                    break
                remaining -= 1
            if not self.step():
                break
        return self.history

    def run_process(self, pid: str, ops: Optional[int] = None) -> History:
        """Run a single process to completion of ``ops`` operations
        (all remaining when None), ignoring the schedule."""
        process = self.processes[pid]
        target = (
            None
            if ops is None
            else process._op_counter + ops - (1 if process.gen else 0)
        )
        while process.has_work():
            if (
                target is not None
                and process.gen is None
                and process._op_counter >= target
            ):
                break
            self.step_process(pid)
        return self.history

    @property
    def steps_taken(self) -> int:
        return self._steps_taken

    # -- internals ---------------------------------------------------------

    def _advance(self, process: Process) -> None:
        if process.gen is None:
            op = process._begin_next_op()
            self.history.record_invocation(
                process.pid, process.current_op_id, op.name, op.args
            )
            self._resume(process, first=True)
        else:
            pending = process.pending
            if pending is None:
                raise RuntimeError(
                    f"{process.pid} is mid-operation without a pending "
                    "primitive; algorithm generators must yield "
                    "PendingPrimitive"
                )
            result = self._apply(process, pending)
            self._resume(process, value=result)

    def _apply(self, process: Process, pending: PendingPrimitive) -> Any:
        result = pending.obj.apply(pending.primitive, pending.args)
        self.history.record_primitive(
            process.pid,
            process.current_op_id,
            pending.obj.name,
            pending.primitive,
            pending.args,
            result,
        )
        process.steps_in_current_op += 1
        # The replay log makes the generator's control state rebuildable
        # (see repro.sim.checkpoint): ops are deterministic functions of
        # the primitive results they were sent.
        process._replay_log.append(result)
        return result

    def _resume(
        self, process: Process, value: Any = None, first: bool = False
    ) -> None:
        suspended, payload = drive_to_suspension(
            process.pid, process.gen, value, first=first
        )
        if not suspended:
            self.history.record_response(
                process.pid,
                process.current_op_id,
                process.current_op.name,
                payload,
            )
            process._finish_op()
            return
        process.pending = payload
