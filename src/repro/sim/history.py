"""Execution histories: the recorded event log of a simulation.

A :class:`History` is the machine-checkable counterpart of the paper's
execution ``alpha``: a totally ordered sequence of invocation, response,
primitive and crash events.  All the analysis tooling (linearizability
checking, effectiveness detection, leakage analysis, phase partitioning)
consumes histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.events import CrashEvent, Invocation, PrimitiveEvent, Response


@dataclass
class OperationRecord:
    """A high-level operation reconstructed from the event log."""

    pid: str
    op_id: int
    name: str
    args: Tuple[Any, ...]
    invoke_index: int
    response_index: Optional[int] = None
    result: Any = None
    primitives: List[PrimitiveEvent] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        return self.response_index is not None

    @property
    def is_pending(self) -> bool:
        return self.response_index is None

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence: this op responded before ``other`` was
        invoked."""
        return (
            self.response_index is not None
            and self.response_index < other.invoke_index
        )

    def key(self) -> Tuple[str, int]:
        return (self.pid, self.op_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.is_complete else "pending"
        return (
            f"OperationRecord({self.pid} #{self.op_id} {self.name}"
            f"{self.args!r} -> {self.result!r} [{status}])"
        )


class History:
    """Append-only event log with query helpers.

    A *tap* can be attached with :meth:`stream_to`: every recorded
    event is handed to the sink as it happens (the streaming seam the
    online verdict paths — ``repro serve``, ``stress --online`` —
    consume).  With ``retain=False`` the history stops buffering:
    events are forwarded but not stored, and operation records are
    pruned at their response, so memory stays bounded by the number of
    *in-flight* operations regardless of run length.  Recording calls
    are serialized by the runtime that owns the history (simulation
    step loop, thread runtime's history lock, memory-server process),
    so the sink inherits that mutual exclusion.
    """

    def __init__(self) -> None:
        self.events: List[Any] = []
        self._index = 0
        self._ops: Dict[Tuple[str, int], OperationRecord] = {}
        self._op_order: List[Tuple[str, int]] = []
        self._sink = None
        self._retain = True
        self.completed_count = 0

    # -- streaming ---------------------------------------------------------

    def stream_to(self, sink, retain: bool = True) -> None:
        """Forward every subsequently recorded event to ``sink``.

        ``retain=False`` additionally disables buffering (see class
        docstring); the query helpers then only see in-flight state.
        """
        self._sink = sink
        self._retain = retain

    # -- recording (used by Simulation) ----------------------------------

    def next_index(self) -> int:
        index = self._index
        self._index += 1
        return index

    def record_invocation(
        self, pid: str, op_id: int, op_name: str, args: Tuple[Any, ...]
    ) -> Invocation:
        event = Invocation(self.next_index(), pid, op_id, op_name, args)
        record = OperationRecord(
            pid=pid,
            op_id=op_id,
            name=op_name,
            args=args,
            invoke_index=event.index,
        )
        self._ops[record.key()] = record
        if self._retain:
            self.events.append(event)
            self._op_order.append(record.key())
        if self._sink is not None:
            self._sink(event)
        return event

    def record_response(
        self, pid: str, op_id: int, op_name: str, result: Any
    ) -> Response:
        event = Response(self.next_index(), pid, op_id, op_name, result)
        self.completed_count += 1
        if self._retain:
            self.events.append(event)
            record = self._ops[(pid, op_id)]
            record.response_index = event.index
            record.result = result
        else:
            self._ops.pop((pid, op_id), None)
        if self._sink is not None:
            self._sink(event)
        return event

    def record_primitive(
        self,
        pid: str,
        op_id: int,
        obj_name: str,
        primitive: str,
        args: Tuple[Any, ...],
        result: Any,
    ) -> PrimitiveEvent:
        event = PrimitiveEvent(
            self.next_index(), pid, op_id, obj_name, primitive, args, result
        )
        if self._retain:
            self.events.append(event)
            self._ops[(pid, op_id)].primitives.append(event)
        if self._sink is not None:
            self._sink(event)
        return event

    def record_crash(self, pid: str, op_id: Optional[int]) -> CrashEvent:
        event = CrashEvent(self.next_index(), pid, op_id)
        if self._retain:
            self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        return event

    # -- queries ----------------------------------------------------------

    def operations(
        self,
        pid: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[OperationRecord]:
        """All operations in invocation order, optionally filtered."""
        records = (self._ops[key] for key in self._op_order)
        return [
            record
            for record in records
            if (pid is None or record.pid == pid)
            and (name is None or record.name == name)
        ]

    def operation(self, pid: str, op_id: int) -> OperationRecord:
        return self._ops[(pid, op_id)]

    def complete_operations(
        self, name: Optional[str] = None
    ) -> List[OperationRecord]:
        return [op for op in self.operations(name=name) if op.is_complete]

    def pending_operations(
        self, name: Optional[str] = None
    ) -> List[OperationRecord]:
        return [op for op in self.operations(name=name) if op.is_pending]

    def primitive_events(
        self,
        pid: Optional[str] = None,
        obj_name: Optional[str] = None,
        primitive: Optional[str] = None,
    ) -> List[PrimitiveEvent]:
        return [
            event
            for event in self.events
            if isinstance(event, PrimitiveEvent)
            and (pid is None or event.pid == pid)
            and (obj_name is None or event.obj_name == obj_name)
            and (primitive is None or event.primitive == primitive)
        ]

    def projection(self, pid: str) -> List[Tuple[str, str, Tuple, Any]]:
        """The local view of ``pid``: its primitive events' observable
        content, in order.

        Two executions are indistinguishable to ``pid`` (``alpha ~p
        beta``) exactly when the projections coincide; the leakage
        experiments compare projections of paired executions directly.
        """
        return [
            event.view()
            for event in self.events
            if isinstance(event, PrimitiveEvent) and event.pid == pid
        ]

    @property
    def length(self) -> int:
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[Any]:
        return iter(self.events)

    def pretty(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the log (for debugging/examples)."""
        lines = []
        events = self.events if limit is None else self.events[:limit]
        for event in events:
            if isinstance(event, Invocation):
                lines.append(
                    f"{event.index:>5}  {event.pid:<8} invoke   "
                    f"{event.op_name}{event.args!r}"
                )
            elif isinstance(event, Response):
                lines.append(
                    f"{event.index:>5}  {event.pid:<8} response "
                    f"{event.op_name} -> {event.result!r}"
                )
            elif isinstance(event, PrimitiveEvent):
                lines.append(
                    f"{event.index:>5}  {event.pid:<8}   {event.obj_name}."
                    f"{event.primitive}{event.args!r} -> {event.result!r}"
                )
            elif isinstance(event, CrashEvent):
                lines.append(f"{event.index:>5}  {event.pid:<8} CRASH")
        return "\n".join(lines)
