"""Deterministic shared-memory execution substrate.

The paper's model (Section 2) is an interleaving model: each step of a
process is some local computation followed by a single atomic primitive on
a base object.  This package reproduces that model exactly:

- Algorithms are written as generator functions.  Every shared-memory
  primitive is a ``yield`` suspension point (see :mod:`repro.memory`).
- A :class:`~repro.sim.runner.Simulation` drives processes under a
  pluggable :class:`~repro.sim.scheduler.Schedule`; one scheduler step
  executes exactly one primitive.
- Every primitive, invocation and response is recorded in a
  :class:`~repro.sim.history.History`, so that definitions phrased in
  terms of executions and indistinguishability (effective operations,
  uncompromised operations) can be checked mechanically after the fact.

Executions are fully deterministic given the schedule seed, which makes
every experiment in this repository replayable.
"""

from repro.sim.events import (
    CrashEvent,
    Invocation,
    PendingPrimitive,
    PrimitiveEvent,
    Response,
)
from repro.sim.history import History, OperationRecord
from repro.sim.process import Op, Process, ProcessState
from repro.sim.runner import Simulation
from repro.sim.scheduler import (
    PrioritySchedule,
    RandomSchedule,
    ReplaySchedule,
    RoundRobinSchedule,
    Schedule,
)

__all__ = [
    "CrashEvent",
    "History",
    "Invocation",
    "Op",
    "OperationRecord",
    "PendingPrimitive",
    "PrimitiveEvent",
    "PrioritySchedule",
    "Process",
    "ProcessState",
    "RandomSchedule",
    "ReplaySchedule",
    "Response",
    "RoundRobinSchedule",
    "Schedule",
    "Simulation",
]
