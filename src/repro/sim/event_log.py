"""History events as tagged-JSON lines: the streaming wire format.

The online verdict paths move history events across process and
machine boundaries — the thread/process runtimes stream them into
``python -m repro serve``, and ``stress --online --event-log`` spools
them to disk.  This module defines the codec and the line protocol.

The value codec extends :mod:`repro.analysis.fastlin`'s canonical
tagged-JSON (tuples/sets/lists/dicts) with the *loose* tags event
payloads need: the ``⊥`` sentinel, :class:`~repro.memory.rword.RWord`
triples (primitive results on ``R`` — the windowed audit oracle reads
``.val`` off them), dataclasses (revived to their real ``repro.*``
class so ``isinstance`` hooks like ``register._decode_value`` keep
working, degrading to attribute-compatible hashable
:class:`NsShell` shells for foreign or since-renamed classes) and, as
a last resort, ``repr`` capsules that compare by their text.

Line protocol (one JSON object per line)::

    {"k": "hello", "v": 1, ...meta}     stream header
    {"k": "inv", ...} / {"k": "res", ...} / {"k": "prim", ...}
    {"k": "crash", ...}                 history events, index order
    {"k": "end", "events": N}           clean end-of-stream marker

A stream that stops without its ``end`` marker was truncated — the
consumer must report a PARTIAL verdict, never OK.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from types import SimpleNamespace
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.analysis.fastlin import decode_value, encode_value
from repro.memory.base import BOTTOM, Bottom
from repro.memory.rword import RWord
from repro.sim.events import CrashEvent, Invocation, PrimitiveEvent, Response

#: Wire-format version (the ``hello`` line carries it).
PROTOCOL_VERSION = 1


class ReprCapsule:
    """Last-resort encoding of a value with no structural codec: keeps
    the ``repr`` text and compares by it."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return self.text

    def __eq__(self, other: Any) -> bool:
        return repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(self.text)


class NsShell(SimpleNamespace):
    """Decoded dataclass shell that oracles can key sets/dicts on.

    Hashes by attribute *names* only (equal shells have equal attribute
    sets, so the hash contract holds even when attribute values are
    unhashable decoded containers); equality stays SimpleNamespace's
    attribute-wise comparison.
    """

    def __hash__(self) -> int:
        return hash(frozenset(self.__dict__))


def encode_loose(value: Any) -> Any:
    """JSON-safe encoding of an event value (superset of
    :func:`repro.analysis.fastlin.encode_value`)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, Bottom):
        return {"btm": 1}
    if isinstance(value, RWord):
        return {
            "rw": [value.seq, encode_loose(value.val), value.bits]
        }
    if isinstance(value, tuple):
        return {"t": [encode_loose(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_loose(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {
            "s": sorted(
                (encode_loose(v) for v in value),
                key=lambda e: json.dumps(e, sort_keys=True),
            )
        }
    if isinstance(value, dict):
        return {
            "d": [
                [encode_loose(k), encode_loose(v)]
                for k, v in value.items()
            ]
        }
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "ns": {
                "c": f"{cls.__module__}.{cls.__qualname__}",
                "f": {
                    f.name: encode_loose(getattr(value, f.name))
                    for f in fields(value)
                },
            }
        }
    return {"rx": repr(value)}


def _revive_dataclass(path: str, attrs: Dict[str, Any]) -> Any:
    """Reconstruct a repo dataclass from its wire form, or fall back
    to an attribute-compatible :class:`NsShell`.

    Only ``repro.*`` classes are ever imported (the producer is this
    repo; a log naming anything else is treated as foreign data), and
    any reconstruction failure — renamed class, changed fields —
    degrades to the shell rather than rejecting the stream.
    """
    if path.startswith("repro."):
        module_name, _, qualname = path.rpartition(".")
        try:
            module = __import__(module_name, fromlist=["_"])
            cls = module
            for part in qualname.split("."):
                cls = getattr(cls, part)
            return cls(**attrs)
        except Exception:
            pass
    return NsShell(**attrs)


def decode_loose(encoded: Any) -> Any:
    """Inverse of :func:`encode_loose` (to oracle-compatible values)."""
    if not isinstance(encoded, dict):
        return encoded
    (tag, items), = encoded.items()
    if tag == "btm":
        return BOTTOM
    if tag == "rw":
        seq, val, bits = items
        return RWord(seq, decode_loose(val), bits)
    if tag == "t":
        return tuple(decode_loose(v) for v in items)
    if tag == "l":
        return [decode_loose(v) for v in items]
    if tag == "s":
        return frozenset(decode_loose(v) for v in items)
    if tag == "d":
        return {decode_loose(k): decode_loose(v) for k, v in items}
    if tag == "ns":
        return _revive_dataclass(
            items["c"],
            {name: decode_loose(v) for name, v in items["f"].items()},
        )
    if tag == "rx":
        return ReprCapsule(items)
    raise ValueError(f"unknown event-payload tag {tag!r}")


def strict_or_loose(value: Any) -> Any:
    """Prefer fastlin's canonical encoding (byte-stable set ordering),
    fall back to the loose tags for values it cannot carry."""
    try:
        return encode_value(value)
    except TypeError:
        return encode_loose(value)


# ---------------------------------------------------------------------
# Event <-> payload
# ---------------------------------------------------------------------

def event_to_payload(event: Any) -> Dict[str, Any]:
    if isinstance(event, Invocation):
        return {
            "k": "inv",
            "i": event.index,
            "p": event.pid,
            "o": event.op_id,
            "n": event.op_name,
            "a": strict_or_loose(tuple(event.args)),
        }
    if isinstance(event, Response):
        return {
            "k": "res",
            "i": event.index,
            "p": event.pid,
            "o": event.op_id,
            "n": event.op_name,
            "r": strict_or_loose(event.result),
        }
    if isinstance(event, PrimitiveEvent):
        return {
            "k": "prim",
            "i": event.index,
            "p": event.pid,
            "o": event.op_id,
            "obj": event.obj_name,
            "prim": event.primitive,
            "a": strict_or_loose(tuple(event.args)),
            "r": strict_or_loose(event.result),
        }
    if isinstance(event, CrashEvent):
        return {
            "k": "crash",
            "i": event.index,
            "p": event.pid,
            "o": event.op_id,
        }
    raise TypeError(f"cannot encode event {event!r}")


def event_from_payload(payload: Dict[str, Any]) -> Any:
    kind = payload["k"]
    if kind == "inv":
        return Invocation(
            payload["i"], payload["p"], payload["o"], payload["n"],
            decode_loose(payload["a"]),
        )
    if kind == "res":
        return Response(
            payload["i"], payload["p"], payload["o"], payload["n"],
            decode_loose(payload["r"]),
        )
    if kind == "prim":
        return PrimitiveEvent(
            payload["i"], payload["p"], payload["o"], payload["obj"],
            payload["prim"], decode_loose(payload["a"]),
            decode_loose(payload["r"]),
        )
    if kind == "crash":
        return CrashEvent(payload["i"], payload["p"], payload["o"])
    raise ValueError(f"unknown event kind {kind!r}")


# Re-export for symmetry: op payloads decode with the strict codec.
__all_decoders__ = (decode_value,)


# ---------------------------------------------------------------------
# The JSONL sink (History.stream_to target)
# ---------------------------------------------------------------------

class JsonlEventSink:
    """Writes one tagged-JSON line per history event.

    Construct it with a path and attach via
    ``history.stream_to(sink)``; the file opens lazily at the first
    event (so the sink pickles cleanly into the memory-server process
    of :class:`~repro.rt.process_runtime.ProcessRuntime`) and a
    ``hello`` header is written first.  Call :meth:`close` after a
    clean run to append the ``end`` marker — a log without it reads as
    truncated (PARTIAL), which is exactly right for a crashed run.
    """

    def __init__(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = path
        self.meta = dict(meta or {})
        self._fh: Optional[TextIO] = None
        self.events_written = 0

    def _open(self) -> TextIO:
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8")
            header = {"k": "hello", "v": PROTOCOL_VERSION}
            header.update(self.meta)
            self._fh.write(
                json.dumps(header, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        return self._fh

    def __call__(self, event: Any) -> None:
        fh = self._open()
        fh.write(
            json.dumps(
                event_to_payload(event),
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
        self.events_written += 1

    def close(self, end: bool = True) -> None:
        fh = self._open()  # even an empty run gets a well-formed log
        if end:
            fh.write(
                json.dumps(
                    {"k": "end", "events": self.events_written},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
        fh.close()
        self._fh = None

    # Lazy-open keeps the sink picklable until first use.
    def __getstate__(self) -> Dict[str, Any]:
        if self._fh is not None:
            raise TypeError("cannot pickle an open JsonlEventSink")
        return {
            "path": self.path,
            "meta": self.meta,
            "events_written": self.events_written,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.meta = state["meta"]
        self.events_written = state["events_written"]
        self._fh = None


# ---------------------------------------------------------------------
# Reading streams back
# ---------------------------------------------------------------------

def parse_line(line: str) -> Tuple[str, Any]:
    """Parse one protocol line into ``(kind, value)``.

    ``kind`` is ``"hello"`` (value: meta dict), ``"event"`` (value: a
    decoded event) or ``"end"`` (value: the declared event count, or
    ``None``).
    """
    payload = json.loads(line)
    kind = payload.get("k")
    if kind == "hello":
        return "hello", payload
    if kind == "end":
        return "end", payload.get("events")
    return "event", event_from_payload(payload)


def iter_event_log(path: str) -> Iterator[Tuple[str, Any]]:
    """Yield ``(kind, value)`` per :func:`parse_line` for each line.

    Torn trailing lines (a writer killed mid-write) are swallowed —
    the stream simply ends without its ``end`` marker, which consumers
    already treat as truncation.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield parse_line(line)
            except (ValueError, KeyError):
                return


def load_event_log(
    path: str,
) -> Tuple[List[Any], bool, Dict[str, Any]]:
    """Read a whole log: ``(events, clean_end, meta)``."""
    events: List[Any] = []
    clean = False
    meta: Dict[str, Any] = {}
    for kind, value in iter_event_log(path):
        if kind == "hello":
            meta = value
        elif kind == "end":
            clean = True
        else:
            events.append(value)
    return events, clean, meta
