"""Processes: sequential programs driven one primitive at a time.

A process executes a sequence of high-level operations (:class:`Op`).
Each operation is a generator; every ``yield`` hands a
:class:`~repro.sim.events.PendingPrimitive` to the scheduler, which
applies it atomically and sends back the result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import PendingPrimitive


# A runtime-agnostic process reference.  Object handles (readers,
# writers, auditors, scanners) consume only the ``pid`` attribute, so
# they accept the simulator's Process and repro.rt's ThreadProcess
# alike; the alias marks that contract in handle signatures.
ProcessRef = Any


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    IDLE = "idle"  # no operation in progress, more ops queued
    RUNNING = "running"  # an operation is in progress
    DONE = "done"  # program exhausted
    CRASHED = "crashed"  # stopped taking steps (pending op stays pending)


@dataclass
class Op:
    """A high-level operation to perform: ``factory(*args)`` must return a
    generator implementing the operation."""

    name: str
    factory: Callable[..., Generator]
    args: Tuple[Any, ...] = ()

    def start(self) -> Generator:
        gen = self.factory(*self.args)
        if not hasattr(gen, "send"):
            raise TypeError(
                f"operation {self.name!r} did not return a generator; "
                "algorithm methods must be generator functions"
            )
        return gen


@dataclass
class Process:
    """One simulated sequential process.

    Processes are created through :meth:`repro.sim.runner.Simulation.spawn`
    and given a program with :meth:`assign`.  The scheduler interacts with
    a process only through :meth:`has_work` and the runner's stepping
    logic; user code interacts with it through handles bound to it (e.g.
    ``register.reader(process)``).
    """

    pid: str
    _program: List[Op] = field(default_factory=list)
    _next_op: int = 0
    _op_counter: int = 0

    state: ProcessState = ProcessState.IDLE
    gen: Optional[Generator] = None
    current_op: Optional[Op] = None
    current_op_id: Optional[int] = None
    pending: Optional[PendingPrimitive] = None
    steps_in_current_op: int = 0
    # Primitive results sent into the current operation's generator, in
    # order.  Because operations are deterministic functions of their
    # primitive results, this log is a complete recipe for rebuilding the
    # generator's control state: restart the generator and re-send the
    # logged values (repro.sim.checkpoint does exactly that when a
    # model-checking backtrack restores a mid-operation process).
    _replay_log: List[Any] = field(
        default_factory=list, repr=False, compare=False
    )
    # Set by Simulation.spawn: called whenever has_work() may have
    # changed, so the runner can maintain its runnable set incrementally
    # instead of re-scanning every process on every step.
    _watcher: Optional[Callable[["Process"], None]] = field(
        default=None, repr=False, compare=False
    )

    def assign(self, ops) -> "Process":
        """Append operations to this process's program."""
        self._program.extend(ops)
        if self.state is ProcessState.DONE:
            self.state = ProcessState.IDLE
        if self._watcher is not None:
            self._watcher(self)
        return self

    def has_work(self) -> bool:
        if self.state is ProcessState.CRASHED:
            return False
        return self.gen is not None or self._next_op < len(self._program)

    def is_mid_operation(self) -> bool:
        return self.gen is not None

    def remaining_ops(self) -> int:
        return len(self._program) - self._next_op

    # -- internal, used by Simulation ------------------------------------

    def _begin_next_op(self) -> Op:
        op = self._program[self._next_op]
        self._next_op += 1
        self.current_op = op
        self.current_op_id = self._op_counter
        self._op_counter += 1
        self.gen = op.start()
        self.state = ProcessState.RUNNING
        self.steps_in_current_op = 0
        self._replay_log.clear()
        return op

    def _finish_op(self) -> None:
        self.gen = None
        self.current_op = None
        self.current_op_id = None
        self.pending = None
        self._replay_log.clear()
        if self._next_op < len(self._program):
            self.state = ProcessState.IDLE
        else:
            self.state = ProcessState.DONE
        if self._watcher is not None:
            self._watcher(self)

    def _crash(self) -> None:
        self.state = ProcessState.CRASHED
        if self.gen is not None:
            self.gen.close()
            self.gen = None
        self.pending = None
        self._replay_log.clear()
        if self._watcher is not None:
            self._watcher(self)

    def _abandon_op(self) -> None:
        """Drop the in-flight operation (omission fault) and move on.

        The operation's invocation stays in the history with no
        response — pending forever — while the process itself continues
        with the next operation of its program.  ``current_op_id`` is
        not reused: op ids come from ``_op_counter``, so the abandoned
        operation keeps a unique identity for the checkers.
        """
        if self.gen is None:
            raise ValueError(
                f"process {self.pid!r} has no in-flight operation to abandon"
            )
        self.gen.close()
        self.gen = None
        self.current_op = None
        self.current_op_id = None
        self.pending = None
        self._replay_log.clear()
        if self._next_op < len(self._program):
            self.state = ProcessState.IDLE
        else:
            self.state = ProcessState.DONE
        if self._watcher is not None:
            self._watcher(self)

    def _recover(self) -> None:
        """Restart after a crash: resume the program at the next op.

        The crashed operation is lost (``_crash`` already discarded its
        generator and pending primitive; its history record stays
        pending).  The op counter keeps counting, so post-recovery
        operations never collide with pre-crash ones.
        """
        if self.state is not ProcessState.CRASHED:
            raise ValueError(f"process {self.pid!r} is not crashed")
        if self._next_op < len(self._program):
            self.state = ProcessState.IDLE
        else:
            self.state = ProcessState.DONE
        if self._watcher is not None:
            self._watcher(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = self.current_op.name if self.current_op else None
        return f"Process({self.pid!r}, state={self.state.value}, op={op})"
