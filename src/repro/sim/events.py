"""Event types recorded in an execution history.

An execution (paper, Section 2) is an alternating sequence of
configurations and events.  We record three kinds of events:

- :class:`Invocation` / :class:`Response` delimit high-level operations
  (``read``, ``write``, ``audit``, ...).
- :class:`PrimitiveEvent` records a single atomic primitive applied to a
  base object, together with its arguments and its result.  The sequence
  of primitive events *by one process* (arguments and results included) is
  exactly that process's local view, which is what the paper's
  indistinguishability relation ``alpha ~p beta`` compares.
- :class:`CrashEvent` marks the point where a process stops taking steps
  (used to model the honest-but-curious attacker that "stops prematurely",
  Section 2, Attacks).

Events carry a global, monotonically increasing ``index`` so that
real-time precedence between operations can be recovered from the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class PendingPrimitive:
    """A primitive a process is about to apply, yielded to the scheduler.

    Algorithm code never executes a primitive directly: it yields a
    ``PendingPrimitive`` and the scheduler applies it atomically when the
    process is next scheduled.  This guarantees the one-primitive-per-step
    granularity of the paper's model, and lets adversarial schedules
    inspect what each process is about to do.
    """

    obj: Any
    primitive: str
    args: Tuple[Any, ...] = ()

    def describe(self) -> str:
        name = getattr(self.obj, "name", repr(self.obj))
        return f"{name}.{self.primitive}{self.args!r}"


@dataclass(frozen=True)
class Invocation:
    """Invocation event of a high-level operation."""

    index: int
    pid: str
    op_id: int
    op_name: str
    args: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class Response:
    """Response event of a high-level operation."""

    index: int
    pid: str
    op_id: int
    op_name: str
    result: Any = None


@dataclass(frozen=True)
class PrimitiveEvent:
    """One atomic primitive applied to a base object.

    ``op_id`` links the primitive to the high-level operation during which
    it was applied, which is how effectiveness (Claim 4 / Claim 35) is
    detected after the fact.
    """

    index: int
    pid: str
    op_id: int
    obj_name: str
    primitive: str
    args: Tuple[Any, ...]
    result: Any

    def view(self) -> Tuple[str, str, Tuple[Any, ...], Any]:
        """The locally observable content of this event.

        Two executions are indistinguishable to a process iff the
        sequences of ``view()`` tuples of its primitive events coincide.
        """
        return (self.obj_name, self.primitive, self.args, self.result)


@dataclass(frozen=True)
class CrashEvent:
    """Process ``pid`` stops taking steps after this point."""

    index: int
    pid: str
    op_id: Optional[int] = None


Event = Any
