"""Schedules: the adversary choosing which process steps next.

The paper quantifies over *all* executions; a schedule is our adversary
generating one.  Schedules see the runnable processes (including the
primitive each is about to apply, via ``Process.pending``) and pick one.

Provided policies:

- :class:`RoundRobinSchedule` -- fair, deterministic.
- :class:`RandomSchedule` -- seeded uniform choice; sweeping seeds
  samples the execution space.
- :class:`ReplaySchedule` -- replays an explicit pid sequence (used to
  construct the paper's hand-crafted interleavings in tests).
- :class:`PrioritySchedule` -- weighted random choice; used for reader
  storms (E1) and writer-starved scenarios.
- :class:`InterposingSchedule` -- schedules a victim process until it is
  about to apply a primitive matching a predicate, then lets attackers
  run; used to build worst-case write-retry executions (Lemma 2's bound).

Fault injection rides on the same seam: instead of a process to step, a
schedule's ``choose`` may return :class:`CrashDecision` and the runner
crashes that process at this step.  This makes crash faults part of the
schedule space an adversary (in particular the fuzzer, :mod:`repro.fuzz`)
explores, rather than something experiments must script by hand.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.process import Process


def _by_pid(process: Process) -> str:
    return process.pid


def ordered_by_pid(runnable: List[Process]) -> List[Process]:
    """The runnable list in pid order, without re-sorting when possible.

    :meth:`repro.sim.runner.Simulation.step` hands schedules an
    already-sorted list, so the common case is a single O(n) sortedness
    check with no allocation; only externally built, unsorted lists pay
    for a real sort.  The returned list must not be mutated.
    """
    previous = None
    for process in runnable:
        if previous is not None and process.pid < previous:
            return sorted(runnable, key=_by_pid)
        previous = process.pid
    return runnable


class CrashDecision:
    """A schedule decision that crashes a process instead of stepping one.

    When ``Schedule.choose`` returns ``CrashDecision(pid)``, the runner
    calls :meth:`repro.sim.runner.Simulation.crash` on that process and
    the step is consumed by the crash.  The pid must name an existing,
    not-yet-crashed process (it need not be runnable: crashing an idle
    process models a stop between operations).

    The process runtime (:mod:`repro.rt.process_runtime`) interprets the
    same decision at its memory server: the process is crashed at its
    next primitive request, mid-operation, and the pending operation
    stays pending in the history.  Fault plans for the message-passing
    backend therefore speak the exact vocabulary the fuzzer's schedule
    adversaries already emit.
    """

    __slots__ = ("pid",)

    def __init__(self, pid: str) -> None:
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashDecision({self.pid!r})"


class DelayDecision:
    """A schedule decision that delays a process's pending primitive.

    In the simulator, delaying a process is just the schedule not
    choosing it, so the simulator never needs this decision explicitly.
    Message-passing runtimes do: the memory server of
    :mod:`repro.rt.process_runtime` holds the process's in-flight
    primitive request while (roughly) ``steps`` later-arriving messages
    from other processes are served first — modeling network delay and
    message reorder as a first-class schedule decision, on the same seam
    as :class:`CrashDecision`.
    """

    __slots__ = ("pid", "steps")

    def __init__(self, pid: str, steps: int = 4) -> None:
        if steps < 1:
            raise ValueError("delay must cover at least one step")
        self.pid = pid
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DelayDecision({self.pid!r}, steps={self.steps})"


class PartitionDecision:
    """Sever a set of processes from the shared memory for a while.

    In the simulator the named pids are excluded from the schedulable
    view for the next ``steps`` scheduler steps — a partition is
    subsumed by scheduling freedom, so no history event is recorded and
    every oracle stays sound by construction.  If only partitioned
    processes still have work, the partition heals immediately (the
    simulator analogue of the memory server flushing parked requests
    when its queues run dry), so a partition can stall progress but
    never deadlock a run.

    The memory server of :mod:`repro.rt.process_runtime` parks primitive
    requests arriving from partitioned pids and serves them, in arrival
    order, once ``steps`` further arrivals have been served (or when no
    other traffic remains).  The partitioned operation stays invoked-
    but-unanswered while parked, exactly like a slow network path.
    """

    __slots__ = ("pids", "steps")

    def __init__(self, pids: Sequence[str], steps: int = 4) -> None:
        if isinstance(pids, str):
            pids = (pids,)
        self.pids = tuple(sorted(set(pids)))
        if not self.pids:
            raise ValueError("a partition must name at least one pid")
        if steps < 1:
            raise ValueError("a partition must cover at least one step")
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionDecision({self.pids!r}, steps={self.steps})"


class RecoverDecision:
    """Restart a crashed process from a fresh replica.

    The recovered process keeps its pid and resumes its program with
    the operation *after* the one it crashed in: the crashed operation
    stays pending in the history forever (its response never arrives),
    and subsequent operations get fresh op_ids, so the linearizability
    checker sees an ordinary process with one more pending operation —
    no new history event kind is needed.

    In the process runtime the worker rebuilds its replica via the
    picklable ``build`` factory and re-derives its program from the
    program/source factory before continuing — a genuine
    restart-from-checkpoint, not a resumed in-memory object.
    """

    __slots__ = ("pid",)

    def __init__(self, pid: str) -> None:
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoverDecision({self.pid!r})"


class DuplicateDecision:
    """Re-deliver the named process's most recently applied primitive.

    The memory applies the duplicated request a second time and records
    the second application in the history under the original operation
    — the per-object log keeps matching the true application order, so
    the audit oracle judges exactly what the memory really did.  No
    result is delivered to the process (it already has its reply), so
    the linearizability checker is unaffected.

    This is the decision that exercises non-idempotent primitives: a
    duplicated ``fetch&xor`` flips an announce bit back (XOR is an
    involution), a duplicated compare&swap simply fails the second
    time.  Only applicable to a pid that has an applied primitive to
    re-deliver; samplers and the lenient replayer skip it otherwise.
    """

    __slots__ = ("pid",)

    def __init__(self, pid: str) -> None:
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DuplicateDecision({self.pid!r})"


class OmitDecision:
    """Drop the named process's in-flight primitive request.

    The request is never applied and never recorded; the process
    abandons the operation it was executing (in the process runtime the
    worker sees the omission as a timeout) and continues with its next
    operation.  The abandoned operation stays pending in the history —
    the same conservative "may or may not have happened" treatment a
    crash gets, except the process itself lives on.
    """

    __slots__ = ("pid",)

    def __init__(self, pid: str) -> None:
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OmitDecision({self.pid!r})"


#: Every decision class a ``Schedule.choose`` / ``FaultPlan.decide``
#: may return instead of a process to step.
FAULT_DECISIONS = (
    CrashDecision,
    DelayDecision,
    PartitionDecision,
    RecoverDecision,
    DuplicateDecision,
    OmitDecision,
)


class Schedule:
    """Base class: pick the next process to step.

    ``choose`` returns either a :class:`~repro.sim.process.Process` from
    the runnable list or a :class:`CrashDecision` (fault injection).
    """

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget internal state (called when a simulation restarts)."""


class RoundRobinSchedule(Schedule):
    """Cycle through runnable processes in pid order."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        ordered = ordered_by_pid(runnable)
        process = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return process

    def reset(self) -> None:
        self._cursor = 0


class RandomSchedule(Schedule):
    """Uniform seeded random choice among runnable processes."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        return self._rng.choice(ordered_by_pid(runnable))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class ReplaySchedule(Schedule):
    """Replay an explicit sequence of pids.

    When the scripted pid is not runnable (or the script is exhausted),
    falls back to the first runnable process; strict mode raises instead.
    """

    def __init__(self, pids: Sequence[str], strict: bool = False) -> None:
        self.pids = list(pids)
        self.strict = strict
        self._cursor = 0

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        by_pid = {p.pid: p for p in runnable}
        while self._cursor < len(self.pids):
            pid = self.pids[self._cursor]
            self._cursor += 1
            if pid in by_pid:
                return by_pid[pid]
            if self.strict:
                raise RuntimeError(
                    f"replay schedule expected {pid!r} to be runnable at "
                    f"step {step_index}; runnable: {sorted(by_pid)}"
                )
        if self.strict:
            raise RuntimeError("replay schedule exhausted")
        return min(runnable, key=lambda p: p.pid)

    def reset(self) -> None:
        self._cursor = 0


class PrioritySchedule(Schedule):
    """Weighted seeded random choice.

    ``weights`` maps pid prefixes to relative weights; a process's weight
    is the weight of the longest matching prefix (default 1.0).  Giving
    readers weight 20 and the writer weight 1 produces the read-storm
    adversary of experiment E1.
    """

    def __init__(
        self, weights: Dict[str, float], seed: int = 0, default: float = 1.0
    ) -> None:
        self.weights = dict(weights)
        self.default = default
        self.seed = seed
        self._rng = random.Random(seed)
        # The longest-prefix match is recomputed at most once per pid;
        # the weights mapping is treated as fixed after construction.
        self._weight_cache: Dict[str, float] = {}

    def _weight(self, pid: str) -> float:
        cached = self._weight_cache.get(pid)
        if cached is not None:
            return cached
        best_len = -1
        best = self.default
        for prefix, weight in self.weights.items():
            if pid.startswith(prefix) and len(prefix) > best_len:
                best_len = len(prefix)
                best = weight
        self._weight_cache[pid] = best
        return best

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        ordered = ordered_by_pid(runnable)
        weights = [self._weight(p.pid) for p in ordered]
        return self._rng.choices(ordered, weights=weights, k=1)[0]

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class InterposingSchedule(Schedule):
    """Adversary that interposes attacker steps before a victim primitive.

    Runs ``victim`` until its next pending primitive satisfies
    ``trigger``; at that point lets each process in ``interposers`` take
    ``burst`` steps, then allows the victim's primitive.  This builds the
    worst case for the write loop of Algorithm 1: a reader's fetch&xor is
    interposed between the writer's read of R and its compare&swap, making
    the compare&swap fail (once per reader, so at most m failures --
    Lemma 2's bound is m+1 iterations).
    """

    def __init__(
        self,
        victim: str,
        interposers: Sequence[str],
        trigger: Callable[[object], bool],
        burst: int = 1,
    ) -> None:
        self.victim = victim
        self.interposers = list(interposers)
        self.trigger = trigger
        self.burst = burst
        self._queue: List[str] = []
        self._finishing: Optional[str] = None
        self._interposed_for: Optional[object] = None

    def choose(self, runnable: List[Process], step_index: int) -> Process:
        by_pid = {p.pid: p for p in runnable}
        # Let the current interposer finish its whole operation first.
        if self._finishing is not None:
            process = by_pid.get(self._finishing)
            if process is not None and process.is_mid_operation():
                return process
            self._finishing = None
        while self._queue:
            pid = self._queue.pop(0)
            if pid in by_pid:
                self._finishing = pid
                return by_pid[pid]
        victim = by_pid.get(self.victim)
        if victim is None:
            return min(runnable, key=lambda p: p.pid)
        pending = victim.pending
        if (
            pending is not None
            and pending is not self._interposed_for
            and self.trigger(pending)
        ):
            # Interpose once per distinct pending primitive: each retry
            # of the victim (a fresh yield) can be interposed again.
            self._interposed_for = pending
            queued = [
                pid
                for _ in range(self.burst)
                for pid in self.interposers
                if pid in by_pid
            ]
            if queued:
                self._finishing = queued[0]
                self._queue = queued[1:]
                return by_pid[queued[0]]
        return victim

    def reset(self) -> None:
        self._queue = []
        self._finishing = None
        self._interposed_for = None


def schedule_from_seed(seed: Optional[int]) -> Schedule:
    """Convenience: ``None`` -> round robin, int -> seeded random."""
    if seed is None:
        return RoundRobinSchedule()
    return RandomSchedule(seed)
