"""Lightweight fork/checkpoint of scheduler-visible simulation state.

The exhaustive explorer used to reach every schedule-tree node by
replaying its whole pid prefix against a fresh system from ``factory()``
-- cost O(nodes x depth).  This module eliminates the replay: a
:class:`SimulationCheckpointer` captures the scheduler-visible state of a
*live* simulation (shared-object contents, per-process program counters,
pending primitives, the history high-water mark) and restores it in
place, so a depth-first search backtracks in O(state size) instead of
O(depth) full re-executions.

Two obstacles shape the design:

1. **Generators are not copyable.**  Algorithm operations are Python
   generators; CPython cannot snapshot a generator frame.  But in this
   simulator an operation is a *deterministic function of the primitive
   results it was sent* (all shared access goes through yielded
   primitives; local state lives in per-process handles).  The runner
   therefore logs every result sent into the current operation
   (``Process._replay_log``), and a restore rebuilds the generator by
   restarting the operation and re-sending the logged results -- cost
   bounded by the primitives of the *current* operation, not the depth.

2. **Object identity is load-bearing.**  Generators hold references to
   the shared objects they operate on, so restore must mutate object
   state *in place* rather than swap in copies.  The :class:`StateVault`
   adopts every reachable ``repro.*`` instance (shared registers, pads,
   nonce sources, per-process handles) and restores each adopted
   object's ``__dict__`` while preserving references between adopted
   objects.  Objects first seen *after* a checkpoint was taken are
   rolled back to their birth state, which makes lazily materialised
   registers (``RegisterArray``/``BitMatrix`` cells) behave exactly like
   the paper's infinitely pre-allocated registers.

Restoring a mid-operation process is a two-phase dance: local code may
read handle state *at operation start* (e.g. a reader consulting
``prev_sn``), so the vault is first rolled back to the operation-start
baseline recorded when the invocation step ran, the generator is
re-driven (repeating the original local assignments), and only then is
the vault restored to the checkpoint itself.  Because re-driving repeats
the original computation, the two restores converge to the checkpoint
state with every generator's internal frame correct.

Classes may opt attributes out of snapshot/restore with a
``_vault_exclude`` tuple: pure memo caches (lazy register cells, pad
masks) are excluded so that materialisation is monotone and
identity-stable across backtracks.

Typical use (the model checker, ``repro.mc``)::

    ckpt = SimulationCheckpointer(sim, roots=[context])
    mark = ckpt.capture()
    sim.step_process("a")
    ...
    ckpt.restore(mark)        # back to the captured state, in place
"""

from __future__ import annotations

import copy
import enum
import random
import types
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.nonce import NonceSource
from repro.sim.history import History
from repro.sim.process import Op, Process, ProcessState
from repro.sim.runner import Simulation

_ATOMS = (str, bytes, int, float, bool, type(None))

# Exact types whose instances are immutable: snapshot/restore may share
# them instead of deep-copying (subclasses could be mutable, hence the
# exact-type check at use sites).
_ATOMIC_TYPES = frozenset(
    (str, bytes, int, float, bool, complex, type(None))
)


class _RngState:
    """Snapshot of a ``random.Random``: its (immutable) state vector.

    ``getstate``/``setstate`` round-trips are an order of magnitude
    cheaper than deep-copying the generator object, and restoring via
    ``setstate`` mutates the *existing* RNG in place, preserving
    identity for any code holding a reference to it.
    """

    __slots__ = ("state",)

    def __init__(self, state: Any) -> None:
        self.state = state


class CheckpointError(RuntimeError):
    """A simulation state cannot be captured or restored."""


def _excluded(cls: type) -> Tuple[str, ...]:
    return tuple(getattr(cls, "_vault_exclude", ()))


def _is_frozen_dataclass(value: Any) -> bool:
    params = getattr(type(value), "__dataclass_params__", None)
    return params is not None and params.frozen


class StateVault:
    """Identity-preserving snapshot/restore of all reachable repro state.

    The vault *adopts* every mutable ``repro.*`` instance reachable from
    the given roots (plus process programs and pending primitives):
    shared base objects, auditable-object containers, per-process
    handles, pads and nonce sources.  ``snapshot()`` returns an opaque
    state vector; ``restore(snap)`` writes it back into the same
    instances, so references held by live generators stay valid.

    Frozen dataclasses (``RWord``, events) are immutable values, not
    state holders, and are never adopted; :class:`Process`,
    :class:`Simulation`, :class:`History` and :class:`Op` are managed by
    the :class:`SimulationCheckpointer` instead.
    """

    def __init__(self, sim: Simulation, roots: List[Any]) -> None:
        self.sim = sim
        self._roots = list(roots)
        self._objects: List[Any] = []
        self._ids: Dict[int, int] = {}
        self._birth: List[Dict[str, Any]] = []
        self._birth_canon: List[Optional[Tuple]] = []
        self._volatile: List[int] = []
        self.adopt_new()

    # -- discovery ---------------------------------------------------------

    def index_of(self, obj: Any) -> Optional[int]:
        return self._ids.get(id(obj))

    def adopt(self, obj: Any) -> int:
        """Track one instance (birth state = its state right now)."""
        idx = self._ids.get(id(obj))
        if idx is None:
            idx = self._register(obj)
            self._birth[idx] = self._snap_one(obj, self._memo())
        return idx

    def _register(self, obj: Any) -> int:
        idx = len(self._objects)
        self._objects.append(obj)
        self._ids[id(obj)] = idx
        self._birth.append({})
        self._birth_canon.append(None)
        if isinstance(obj, NonceSource):
            # Nonce draws happen in *local* computation, so shared nonce
            # sources are the one piece of state the independence
            # relation must watch outside primitives (repro.mc).
            self._volatile.append(idx)
        return idx

    def _adoptable(self, value: Any) -> bool:
        cls = type(value)
        if isinstance(value, type) or not hasattr(value, "__dict__"):
            return False
        if not getattr(cls, "__module__", "").startswith("repro."):
            return False
        if isinstance(value, (Simulation, Process, History, Op)):
            return False
        if _is_frozen_dataclass(value):
            return False
        return True

    def adopt_new(self) -> None:
        """Walk the object graph and adopt instances not yet tracked.

        Called before every snapshot, so anything the execution
        materialises (lazy register cells, fresh handles) is adopted
        while still in its birth state -- new objects are only ever
        created by local computation, whose mutations land one step
        later, after the next checkpoint.
        """
        fresh: List[Any] = []
        seen: set = set()
        stack: List[Any] = list(self._roots)
        for process in self.sim.processes.values():
            stack.append(process._program)
            if process.pending is not None:
                stack.append(process.pending)
        while stack:
            value = stack.pop()
            if isinstance(value, _ATOMS):
                continue
            vid = id(value)
            if vid in seen:
                continue
            seen.add(vid)
            if isinstance(value, (Simulation, History, Process)):
                # Runner-managed state: the checkpointer handles these
                # directly (histories are truncated, process control
                # state is marked), and walking into them would drag
                # the ever-growing event log into the vault.  Process
                # programs and pendings are seeded explicitly above.
                continue
            if isinstance(value, enum.Enum):
                continue
            if isinstance(value, dict):
                stack.extend(value.values())
            elif isinstance(value, (list, tuple)):
                stack.extend(value)
            elif isinstance(value, (set, frozenset)):
                # Deterministic walk order => deterministic adoption
                # indices across interpreter processes (parallel
                # frontier workers rebuild the same vault).
                stack.extend(sorted(value, key=repr))
            elif isinstance(value, Op):
                stack.append(value.factory)
                stack.append(value.args)
            elif isinstance(value, types.MethodType):
                stack.append(value.__self__)
                stack.append(value.__func__)
            elif isinstance(value, types.FunctionType):
                for cell in value.__closure__ or ():
                    stack.append(cell.cell_contents)
            elif self._adoptable(value):
                if vid not in self._ids:
                    self._register(value)
                    fresh.append(value)
                # Walk every attribute, including _vault_exclude ones:
                # exclusion applies to snapshots, not to discovery.
                stack.extend(value.__dict__.values())
            elif hasattr(value, "__dict__"):
                # Frozen dataclasses and foreign containers may still
                # reference adoptable state.
                stack.extend(value.__dict__.values())
        if fresh:
            memo = self._memo()
            for value in fresh:
                idx = self._ids[id(value)]
                self._birth[idx] = self._snap_one(value, memo)

    # -- snapshot / restore ------------------------------------------------

    def _memo(self) -> Dict[int, Any]:
        """Deepcopy memo that preserves adopted and runner identities."""
        memo: Dict[int, Any] = {id(obj): obj for obj in self._objects}
        memo[id(self.sim)] = self.sim
        memo[id(self.sim.history)] = self.sim.history
        for process in self.sim.processes.values():
            memo[id(process)] = process
        return memo

    def _snap_one(self, obj: Any, memo: Dict[int, Any]) -> Dict[str, Any]:
        drop = _excluded(type(obj))
        snap: Dict[str, Any] = {}
        for key, value in obj.__dict__.items():
            if key in drop:
                continue
            if value.__class__ in _ATOMIC_TYPES:
                snap[key] = value
            elif value.__class__ is random.Random:
                snap[key] = _RngState(value.getstate())
            else:
                snap[key] = copy.deepcopy(value, memo)
        return snap

    def snapshot(self) -> List[Dict[str, Any]]:
        """The current state of every adopted object (opaque)."""
        self.adopt_new()
        memo = self._memo()
        return [self._snap_one(obj, memo) for obj in self._objects]

    def restore(self, snap: List[Dict[str, Any]]) -> None:
        """Write a snapshot back into the adopted instances, in place.

        Objects adopted after the snapshot was taken are rolled back to
        their birth state, so post-checkpoint materialisations vanish
        semantically (their state reverts to the initial value).
        """
        memo = self._memo()
        for idx, obj in enumerate(self._objects):
            target = snap[idx] if idx < len(snap) else self._birth[idx]
            drop = _excluded(type(obj))
            state = obj.__dict__
            for key in [k for k in state if k not in drop]:
                if key not in target:
                    del state[key]
            for key, value in target.items():
                if value.__class__ in _ATOMIC_TYPES:
                    state[key] = value
                elif isinstance(value, _RngState):
                    current = state.get(key)
                    if current.__class__ is random.Random:
                        current.setstate(value.state)
                    else:
                        rng = random.Random()
                        rng.setstate(value.state)
                        state[key] = rng
                else:
                    state[key] = copy.deepcopy(value, memo)

    # -- fingerprint support (repro.mc) -------------------------------------

    def canon(self, value: Any) -> Any:
        """A process-stable, hashable canonicalisation of a value.

        Adopted objects become index references, containers become
        sorted tuples, RNGs become their state vectors.  Used by the
        model checker to fingerprint configurations.
        """
        idx = self._ids.get(id(value))
        if idx is not None:
            return ("@", idx)
        if isinstance(value, _ATOMS):
            return value
        if isinstance(value, dict):
            return (
                "d",
                tuple(
                    sorted(
                        ((self.canon(k), self.canon(v))
                         for k, v in value.items()),
                        key=repr,
                    )
                ),
            )
        if isinstance(value, (list, tuple)):
            return ("t", tuple(self.canon(v) for v in value))
        if isinstance(value, (set, frozenset)):
            return ("s", tuple(sorted((self.canon(v) for v in value),
                                      key=repr)))
        if isinstance(value, random.Random):
            return ("rng", value.getstate())
        if isinstance(value, _RngState):
            return ("rng", value.state)
        if isinstance(value, Process):
            return ("proc", value.pid)
        return ("r", repr(value))

    def _canon_obj(self, obj: Any) -> Tuple:
        drop = _excluded(type(obj))
        return (
            "o",
            tuple(
                sorted(
                    ((key, self.canon(value))
                     for key, value in obj.__dict__.items()
                     if key not in drop),
                    key=repr,
                )
            ),
        )

    def fingerprint_components(self) -> Tuple:
        """Canonical states of all adopted objects that left birth state.

        Birth-equal objects are skipped so that a branch that lazily
        materialised (but never wrote) a register fingerprints the same
        as a branch that never touched it.
        """
        components = []
        for idx, obj in enumerate(self._objects):
            canon = self._canon_obj(obj)
            birth = self._birth_canon[idx]
            if birth is None:
                birth = self._canon_from_snap(idx)
                self._birth_canon[idx] = birth
            if canon != birth:
                components.append((idx, canon))
        return tuple(components)

    def _canon_from_snap(self, idx: int) -> Tuple:
        return (
            "o",
            tuple(
                sorted(
                    ((key, self.canon(value))
                     for key, value in self._birth[idx].items()),
                    key=repr,
                )
            ),
        )

    def volatile_signature(self) -> Tuple:
        """Draw counters of shared randomness touched by local code."""
        return tuple(
            (idx, self._objects[idx]._issued) for idx in self._volatile
        )


class _NeedsRedrive:
    """Sentinel standing in for a deferred generator rebuild.

    Truthy and non-None, so ``Process.has_work`` still reports the
    process runnable; :meth:`SimulationCheckpointer.materialize_generator`
    swaps in the real generator before the process is stepped.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<needs-redrive>"


NEEDS_REDRIVE = _NeedsRedrive()


@dataclass
class _ProcessMark:
    state: ProcessState
    next_op: int
    op_counter: int
    steps_in_op: int
    current_op_id: Optional[int]
    program_len: int
    mid_op: bool
    replay_log: Tuple[Any, ...]
    pending: Any  # the PendingPrimitive at capture time (frozen)


@dataclass
class Checkpoint:
    """Opaque capture of one simulation configuration."""

    steps_taken: int
    vault_snap: List[Dict[str, Any]]
    procs: Dict[str, _ProcessMark]
    history_mark: Tuple
    baselines: Dict[str, List[Dict[str, Any]]]


class SimulationCheckpointer:
    """Capture/restore a live :class:`Simulation` for backtracking search.

    ``roots`` seeds the vault's reachability walk (typically the scenario
    context object); process programs and pending primitives are walked
    automatically.  The caller must report operation-start baselines:
    before stepping a process whose ``gen is None`` (an invocation
    step), call :meth:`set_baseline` with the current vault snapshot so
    mid-operation restores can re-drive the generator from the state its
    local prologue originally observed.
    """

    def __init__(self, sim: Simulation, roots: List[Any]) -> None:
        self.sim = sim
        self.vault = StateVault(sim, roots)
        self._baselines: Dict[str, List[Dict[str, Any]]] = {}

    def set_baseline(
        self, pid: str, vault_snap: List[Dict[str, Any]]
    ) -> None:
        """Record the operation-start vault state for ``pid``."""
        self._baselines[pid] = vault_snap

    def step(self, pid: str) -> bool:
        """Step one process with the checkpoint bookkeeping handled.

        Records the operation-start baseline before an invocation step
        and rebuilds a deferred generator before a primitive step.  The
        explorer inlines this for speed; direct users of the
        checkpointer should step through here.
        """
        process = self.sim.processes[pid]
        if process.gen is None:
            self.set_baseline(pid, self.vault.snapshot())
        else:
            self.materialize_generator(pid)
        return self.sim.step_process(pid)

    def capture(self) -> Checkpoint:
        sim = self.sim
        vault_snap = self.vault.snapshot()
        memo = self.vault._memo()
        procs: Dict[str, _ProcessMark] = {}
        for pid, process in sim.processes.items():
            mid_op = process.gen is not None
            if mid_op and pid not in self._baselines:
                raise CheckpointError(
                    f"process {pid!r} is mid-operation but no "
                    "operation-start baseline was recorded; every "
                    "invocation step must be bracketed by set_baseline"
                )
            procs[pid] = _ProcessMark(
                state=process.state,
                next_op=process._next_op,
                op_counter=process._op_counter,
                steps_in_op=process.steps_in_current_op,
                current_op_id=process.current_op_id,
                program_len=len(process._program),
                mid_op=mid_op,
                replay_log=tuple(
                    copy.deepcopy(list(process._replay_log), memo)
                ),
                pending=process.pending,
            )
        history = sim.history
        pending_marks = {}
        for key in history._op_order:
            record = history._ops[key]
            if record.is_pending:
                pending_marks[key] = (
                    record.response_index,
                    record.result,
                    len(record.primitives),
                )
        history_mark = (
            len(history.events),
            history._index,
            len(history._op_order),
            pending_marks,
        )
        baselines = {
            pid: self._baselines[pid]
            for pid, mark in procs.items()
            if mark.mid_op
        }
        return Checkpoint(
            steps_taken=sim._steps_taken,
            vault_snap=vault_snap,
            procs=procs,
            history_mark=history_mark,
            baselines=baselines,
        )

    def restore(self, mark: Checkpoint) -> None:
        sim = self.sim
        vault = self.vault
        # No discovery pass here: everything mutable is adopted while
        # still pristine by the captures bracketing each step (and by
        # the explorer's pre-check adoption at leaves).  Walking here
        # would permanently adopt the ephemeral handles that leaf
        # checks spawn and this restore is about to discard.

        # Phase 1: shared state back to the checkpoint.
        vault.restore(mark.vault_snap)

        # Phase 2: process control state; drop processes spawned later.
        # Mid-operation generators are NOT rebuilt here: rebuilding is
        # deferred to materialize_generator(), which the explorer calls
        # just before stepping a process -- a backtrack that never
        # steps a process never pays for re-driving it.
        for pid in [p for p in sim.processes if p not in mark.procs]:
            del sim.processes[pid]
        for pid, pmark in mark.procs.items():
            process = sim.processes.get(pid)
            if process is None:
                raise CheckpointError(
                    f"cannot restore {pid!r}: process no longer exists"
                )
            process.state = pmark.state
            process._next_op = pmark.next_op
            process._op_counter = pmark.op_counter
            process.steps_in_current_op = pmark.steps_in_op
            process.current_op_id = pmark.current_op_id
            del process._program[pmark.program_len:]
            process._replay_log = list(pmark.replay_log)
            if pmark.mid_op:
                process.gen = NEEDS_REDRIVE
                process.pending = pmark.pending
                process.current_op = process._program[pmark.next_op - 1]
            else:
                process.gen = None
                process.pending = None
                process.current_op = None

        # Phase 3: truncate the history to the checkpoint's high-water
        # mark and un-mutate records that were pending at capture time.
        events_len, index, op_order_len, pending_marks = mark.history_mark
        history = sim.history
        del history.events[events_len:]
        history._index = index
        for key in history._op_order[op_order_len:]:
            history._ops.pop(key, None)
        del history._op_order[op_order_len:]
        for key, (resp_idx, result, prim_len) in pending_marks.items():
            record = history._ops.get(key)
            if record is None:
                continue
            record.response_index = resp_idx
            record.result = result
            del record.primitives[prim_len:]

        # Phase 4: runner bookkeeping.
        sim._steps_taken = mark.steps_taken
        sim._runnable.clear()
        sim._runnable_sorted = None
        for process in sim.processes.values():
            sim._work_changed(process)
        self._baselines = dict(mark.baselines)

    def materialize_generator(
        self, pid: str, present: Optional[List[Dict[str, Any]]] = None
    ) -> None:
        """Rebuild a deferred mid-operation generator, if necessary.

        Re-driving runs the operation's local code again, so the vault
        is first rolled back to the operation-start baseline the
        prologue originally observed; the re-run repeats the original
        handle assignments and nonce draws, and the final restore lands
        shared state exactly back on the present configuration.  Must be
        called before stepping any process a restore left suspended.
        ``present`` may pass a snapshot of the current configuration if
        the caller already holds one.
        """
        process = self.sim.processes[pid]
        if process.gen is not NEEDS_REDRIVE:
            return
        vault = self.vault
        if present is None:
            present = vault.snapshot()
        vault.restore(self._baselines[pid])
        op = process._program[process._next_op - 1]
        gen = op.start()
        try:
            yielded = next(gen)
            for value in process._replay_log:
                yielded = gen.send(copy.deepcopy(value, vault._memo()))
        except StopIteration:
            raise CheckpointError(
                f"operation {op.name!r} of {pid!r} finished during "
                "re-drive; operations must be deterministic "
                "functions of their primitive results"
            ) from None
        vault.restore(present)
        process.gen = gen
        process.pending = yielded
        process.current_op = op
