"""Developer tooling over recorded histories.

- :mod:`repro.tools.trace` -- JSON export of histories (for diffing,
  archiving, or external analysis) and an ASCII operation timeline
  showing concurrency and linearization-relevant steps at a glance.
"""

from repro.tools.trace import history_to_dict, render_timeline, save_history

__all__ = ["history_to_dict", "render_timeline", "save_history"]
