"""History export and visualisation.

``history_to_dict`` serialises a recorded execution to plain JSON-able
data (values are rendered with ``repr`` so arbitrary Python values
survive); ``render_timeline`` draws operations as intervals over the
global step axis, which makes concurrency windows -- and therefore
linearization freedom -- visible at a glance:

    steps       0         1         2
                0123456789012345678901234567
    w0 write    [=====W====]
    r0 read        [==X=]
    a0 audit             [===A===]

``W``/``X``/``A`` mark the linearization-relevant primitive (successful
R CAS, fetch&xor, R read).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sim.events import CrashEvent, Invocation, PrimitiveEvent, Response
from repro.sim.history import History


def history_to_dict(history: History) -> Dict[str, Any]:
    """A JSON-able rendering of the full event log."""
    events: List[Dict[str, Any]] = []
    for event in history.events:
        if isinstance(event, Invocation):
            events.append({
                "type": "invoke",
                "index": event.index,
                "pid": event.pid,
                "op_id": event.op_id,
                "op": event.op_name,
                "args": [repr(a) for a in event.args],
            })
        elif isinstance(event, Response):
            events.append({
                "type": "response",
                "index": event.index,
                "pid": event.pid,
                "op_id": event.op_id,
                "op": event.op_name,
                "result": repr(event.result),
            })
        elif isinstance(event, PrimitiveEvent):
            events.append({
                "type": "primitive",
                "index": event.index,
                "pid": event.pid,
                "op_id": event.op_id,
                "object": event.obj_name,
                "primitive": event.primitive,
                "args": [repr(a) for a in event.args],
                "result": repr(event.result),
            })
        elif isinstance(event, CrashEvent):
            events.append({
                "type": "crash",
                "index": event.index,
                "pid": event.pid,
            })
    operations = [
        {
            "pid": op.pid,
            "op_id": op.op_id,
            "name": op.name,
            "args": [repr(a) for a in op.args],
            "result": repr(op.result) if op.is_complete else None,
            "invoke_index": op.invoke_index,
            "response_index": op.response_index,
            "primitives": len(op.primitives),
        }
        for op in history.operations()
    ]
    return {"events": events, "operations": operations}


def save_history(history: History, path: str) -> None:
    """Write the JSON export to ``path``."""
    with open(path, "w") as handle:
        json.dump(history_to_dict(history), handle, indent=2)


_MARKERS = {
    ("compare_and_swap", True): "W",  # successful install
    ("fetch_xor", None): "X",
    ("read", None): "A",
}


def _marker_for(op, register_r_name: Optional[str]) -> Optional[int]:
    """Index of the linearization-relevant primitive, if identifiable."""
    if register_r_name is None:
        return None
    for event in op.primitives:
        if event.obj_name != register_r_name:
            continue
        if event.primitive == "fetch_xor":
            return event.index
        if event.primitive == "compare_and_swap" and event.result:
            return event.index
        if event.primitive == "read" and op.name == "audit":
            return event.index
    return None


def render_timeline(
    history: History,
    register: Any = None,
    width: int = 72,
) -> str:
    """ASCII chart of operation intervals over the step axis.

    ``register`` (optional) identifies the main register so that
    linearization-relevant primitives get markers (W = install,
    X = fetch&xor, A = audit's read).
    """
    ops = history.operations()
    if not ops:
        return "(empty history)"
    r_name = getattr(getattr(register, "R", None), "name", None)
    end_of_log = history.length
    scale = max(1.0, end_of_log / max(width, 1))

    def col(index: int) -> int:
        return min(int(index / scale), width - 1)

    label_width = max(
        len(f"{op.pid} {op.name}#{op.op_id}") for op in ops
    )
    lines = []
    axis = " " * (label_width + 2)
    ticks = ["·"] * width
    for step in range(0, end_of_log, max(1, int(10 * scale) // 10 * 10 or 10)):
        ticks[col(step)] = "|"
    lines.append(axis + "".join(ticks) + f"  (0..{end_of_log} steps)")
    for op in ops:
        start = col(op.invoke_index)
        end = col(
            op.response_index
            if op.response_index is not None
            else end_of_log - 1
        )
        row = [" "] * width
        for c in range(start, end + 1):
            row[c] = "="
        row[start] = "["
        row[end] = "]" if op.response_index is not None else ">"
        marker = _marker_for(op, r_name)
        if marker is not None:
            symbol = {
                "write": "W", "write_max": "W",
                "read": "X", "scan": "X",
                "audit": "A",
            }.get(op.name, "*")
            row[col(marker)] = symbol
        label = f"{op.pid} {op.name}#{op.op_id}".ljust(label_width)
        lines.append(f"{label}  {''.join(row)}")
    legend = (
        " " * (label_width + 2)
        + "[..] op interval, > pending, "
        + "W/X/A linearization step on R"
    )
    lines.append(legend)
    return "\n".join(lines)
