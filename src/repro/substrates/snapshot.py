"""Non-auditable atomic snapshots: the substrate ``S`` of Algorithm 3.

The paper uses a linearizable wait-free snapshot as a black box (citing
Afek, Attiya, Dolev, Gafni, Merritt and Shavit [1]).  Two faithful
stand-ins:

- :class:`AfekSnapshot` -- the classic construction, implemented from
  single-writer atomic registers: updates embed a full scan (helping),
  and a scanner either completes a successful *double collect* (two
  identical collects with no interleaved update) or *borrows* the view
  embedded by a process it saw move twice, which must have performed a
  complete scan inside the scanner's interval.  Wait-free: at most n+2
  collects per scan.
- :class:`AtomicSnapshot` -- snapshot as an atomic base object, for the
  substrate ablation.

Both expose generator methods ``update(i, data)`` and ``scan()``
returning a tuple view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.memory.base import BOTTOM, BaseObject
from repro.memory.register import AtomicRegister


@dataclass(frozen=True)
class _Cell:
    """Contents of one component register: data, a per-writer write
    counter, and the view embedded by the writing update."""

    data: Any
    seq: int
    view: Optional[Tuple[Any, ...]]


class AfekSnapshot:
    """Afek et al. single-writer atomic snapshot from atomic registers."""

    def __init__(self, name: str, components: int, initial: Any = BOTTOM):
        if components < 1:
            raise ValueError("need at least one component")
        self.name = name
        self.components = components
        self.initial = initial
        self._regs = [
            AtomicRegister(f"{name}.REG[{i}]", _Cell(initial, 0, None))
            for i in range(components)
        ]
        # Per-writer write counters.  Only writer i touches counter i and
        # increments are local computation, so keeping them here is
        # equivalent to per-process local state.
        self._local_seq = [0] * components

    def _collect(self):
        cells = []
        for reg in self._regs:
            cell = yield from reg.read()
            cells.append(cell)
        return cells

    def _scan_impl(self):
        moved = set()
        prev = yield from self._collect()
        while True:
            cur = yield from self._collect()
            if all(a.seq == b.seq for a, b in zip(prev, cur)):
                # Successful double collect: nothing moved in between.
                return tuple(cell.data for cell in cur)
            for i in range(self.components):
                if prev[i].seq != cur[i].seq:
                    if i in moved:
                        # i moved twice during this scan: its second
                        # update embeds a view scanned entirely within
                        # our interval -- borrow it.
                        return cur[i].view
                    moved.add(i)
            prev = cur

    def scan(self):
        view = yield from self._scan_impl()
        return view

    def update(self, i: int, data: Any):
        if not 0 <= i < self.components:
            raise IndexError(f"component {i} out of range")
        view = yield from self._scan_impl()  # embedded scan (helping)
        self._local_seq[i] += 1
        yield from self._regs[i].write(_Cell(data, self._local_seq[i], view))
        return None

    def peek(self) -> Tuple[Any, ...]:
        return tuple(reg.peek().data for reg in self._regs)


class AtomicSnapshot(BaseObject):
    """Snapshot as an atomic base object (substrate ablation)."""

    def __init__(self, name: str, components: int, initial: Any = BOTTOM):
        super().__init__(name)
        self.components = components
        self._view = [initial] * components

    def _apply_update(self, i: int, data: Any) -> None:
        self._view[i] = data
        return None

    def _apply_scan(self) -> Tuple[Any, ...]:
        return tuple(self._view)

    def update(self, i: int, data: Any):
        return (yield from self._request("update", i, data))

    def scan(self):
        return (yield from self._request("scan"))

    def peek(self) -> Tuple[Any, ...]:
        return tuple(self._view)


def make_snapshot(kind: str, name: str, components: int, initial: Any = BOTTOM):
    """Factory used by the snapshot substrate ablation (E7/B4)."""
    if kind == "afek":
        return AfekSnapshot(name, components, initial)
    if kind == "atomic":
        return AtomicSnapshot(name, components, initial)
    raise ValueError(f"unknown snapshot substrate {kind!r}")
