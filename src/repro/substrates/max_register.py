"""Non-auditable max registers: the substrate ``M`` of Algorithm 2.

The paper uses a linearizable wait-free max register as a black box
(citing Aspnes, Attiya and Censor-Hillel [2]).  We provide two faithful
stand-ins (DESIGN.md, Section 2):

- :class:`AtomicMaxRegister` -- a base object whose ``writeMax`` is a
  single atomic primitive.  This is the strongest faithful model of the
  cited construction and the default substrate.
- :class:`CasMaxRegister` -- a constructive CAS-loop implementation.
  It is lock-free rather than wait-free (a writeMax may retry while
  larger values keep landing -- but then the register is growing, so the
  retry loop also exits as soon as the current value reaches its input).
  Benchmark B5 compares the two substrates inside Algorithm 2.

Both expose the same generator API: ``write_max(v)`` and ``read()``.
"""

from __future__ import annotations

from typing import Any

from repro.memory.base import BaseObject
from repro.memory.register import CasRegister


class AtomicMaxRegister(BaseObject):
    """Max register as an atomic base object."""

    def __init__(self, name: str, initial: Any) -> None:
        super().__init__(name)
        self._value = initial

    def _apply_read(self) -> Any:
        return self._value

    def _apply_write_max(self, value: Any) -> None:
        if value > self._value:
            self._value = value
        return None

    def read(self):
        return (yield from self._request("read"))

    def write_max(self, value: Any):
        return (yield from self._request("write_max", value))

    def peek(self) -> Any:
        return self._value


class CasMaxRegister:
    """Max register built from a compare&swap register.

    ``writeMax(v)`` repeatedly reads the current value and, while it is
    smaller than ``v``, tries to CAS it up to ``v``.  Every failed CAS
    means the register grew, so the loop terminates once the stored value
    reaches ``v`` -- no unbounded retries against a fixed value.
    """

    def __init__(self, name: str, initial: Any) -> None:
        self.name = name
        self._reg = CasRegister(f"{name}.cell", initial)

    def read(self):
        return (yield from self._reg.read())

    def write_max(self, value: Any):
        while True:
            current = yield from self._reg.read()
            if current >= value:
                return None
            swapped = yield from self._reg.compare_and_swap(current, value)
            if swapped:
                return None

    def peek(self) -> Any:
        return self._reg.peek()


def make_max_register(kind: str, name: str, initial: Any):
    """Factory used by the substrate ablation (benchmark B5)."""
    if kind == "atomic":
        return AtomicMaxRegister(name, initial)
    if kind == "cas":
        return CasMaxRegister(name, initial)
    raise ValueError(f"unknown max-register substrate {kind!r}")
