"""Consensus from an auditable register (after [5]).

Attiya et al. (OPODIS 2023) prove that auditable registers add
synchronization power: auditing plus reading/writing solves consensus,
which is why Algorithm 1 *must* rely on universal primitives like
compare&swap.  This module demonstrates that power constructively with a
wait-free 2-process consensus protocol between a reader and a
writer-auditor, using one auditable register plus one plain register
(consensus number 1 on its own):

- the reader ``p_r`` publishes its proposal in a plain register, then
  performs a single ``read`` of the auditable register ``A``; if it
  obtained the initial value ``⊥`` it decides its *own* proposal,
  otherwise it decides the value it read (the writer's proposal);
- the writer ``p_w`` writes its proposal to ``A``, then audits; if the
  audit reports that the reader read ``⊥``, the reader's read linearized
  before the write, so ``p_w`` decides the reader's (published)
  proposal; otherwise every read by the reader is linearized after the
  write and returns ``p_w``'s proposal, so ``p_w`` decides its own.

Agreement hinges exactly on the paper's audit exactness: the audit
reports the reader's read *iff* it is effective and linearized before
the audit (which follows the write).  Experiment E9 checks agreement,
validity and wait-freedom over random schedules.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.auditable_register import AuditableRegister
from repro.crypto.pad import OneTimePadSequence
from repro.memory.base import BOTTOM
from repro.memory.register import AtomicRegister
from repro.sim.process import Op, ProcessRef
from repro.sim.runner import Simulation


class AuditableConsensus:
    """One-shot binary (in fact multi-valued) consensus for two
    processes: one reader, one writer-auditor."""

    def __init__(
        self,
        name: str = "cons",
        pad: Optional[OneTimePadSequence] = None,
    ) -> None:
        self.name = name
        self.A = AuditableRegister(
            num_readers=1, initial=BOTTOM, pad=pad, name=f"{name}.A"
        )
        self.P = AtomicRegister(f"{name}.P", BOTTOM)  # reader's proposal

    def reader_propose(self, process: ProcessRef):
        reader = self.A.reader(process, 0)

        def propose(value: Any):
            yield from self.P.write(value)
            seen = yield from reader.read()
            if seen is BOTTOM:
                return value
            return seen

        return propose

    def writer_propose(self, process: ProcessRef):
        writer = self.A.writer(process)
        auditor = self.A.auditor(process)

        def propose(value: Any):
            yield from writer.write(value)
            report = yield from auditor.audit()
            if (0, BOTTOM) in report:
                # The reader read ⊥ before our write: it decided its own
                # proposal, published in P before its read.
                other = yield from self.P.read()
                return other
            return value

        return propose
