"""Substrates: the non-auditable building blocks the paper cites.

- :mod:`repro.substrates.max_register` -- the wait-free max register
  ``M`` used by Algorithm 2 (cited as Aspnes-Attiya-Censor-Hillel [2]).
- :mod:`repro.substrates.snapshot` -- the wait-free atomic snapshot
  ``S`` used by Algorithm 3 (cited as Afek et al. [1]).
- :mod:`repro.substrates.consensus` -- consensus from an auditable
  register, demonstrating the synchronization power of auditing ([5]).
"""

from repro.substrates.max_register import AtomicMaxRegister, CasMaxRegister
from repro.substrates.snapshot import AfekSnapshot, AtomicSnapshot

__all__ = [
    "AfekSnapshot",
    "AtomicMaxRegister",
    "AtomicSnapshot",
    "CasMaxRegister",
]
