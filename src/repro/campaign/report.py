"""Campaign reporting: per-section and per-axis-slice verdict tables.

The aggregate report answers the question an overnight campaign is run
to answer: *which slice of the design matrix failed?*  Beyond the
per-section totals, :func:`axis_slices` folds point verdicts along
every axis of every section -- one row per ``(section, axis, value)``
-- so a FAIL concentrated in ``runtime=process`` or
``fault_rate=200`` is visible at a glance without grepping JSONL.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.campaign.run import VERDICTS, CampaignOutcome, SectionOutcome
from repro.campaign.spec import CampaignSpec


def _section_axes(spec: CampaignSpec, name: str) -> List[str]:
    for section in spec.sections:
        if section.name == name:
            return [axis.name for axis in section.axes]
    return []


def axis_slices(outcome: CampaignOutcome) -> List[Dict[str, Any]]:
    """Verdict counts folded along each declared axis value."""
    rows: List[Dict[str, Any]] = []
    for section in outcome.sections:
        for axis in _section_axes(outcome.spec, section.name):
            by_value: Dict[Any, Dict[str, int]] = {}
            for record in section.records:
                point = record["params"]["point"]
                value = point.get(axis)
                counts = by_value.setdefault(
                    value, {v: 0 for v in VERDICTS}
                )
                counts[record["payload"]["verdict"]] += 1
            for value, counts in by_value.items():
                rows.append({
                    "slice": f"{section.name}/{axis}={value}",
                    "points": sum(counts.values()),
                    **{v.lower(): counts[v] for v in VERDICTS},
                })
    return rows


def section_rows(outcome: CampaignOutcome) -> List[Dict[str, Any]]:
    rows = []
    for section in outcome.sections:
        counts = section.counts
        rows.append({
            "section": section.name,
            "kind": section.kind,
            "points": len(section.records),
            "run": section.executed,
            "resumed": section.skipped,
            **{v.lower(): counts[v] for v in VERDICTS},
            "verdict": section.verdict,
        })
    return rows


def render_outcome(outcome: CampaignOutcome) -> str:
    """The human-readable campaign report (tables + one-line verdict)."""
    from repro.harness.tables import render_table

    parts = [render_table(section_rows(outcome))]
    slices = axis_slices(outcome)
    if slices:
        parts.append("")
        parts.append(render_table(slices))
    counts = outcome.counts
    mark = ("FAIL" if counts["FAIL"]
            else ("PARTIAL" if counts["PARTIAL"] else "PASS"))
    parts.append("")
    parts.append(
        f"  [{mark}] campaign {outcome.spec.name!r}: {outcome.points} "
        f"points across {len(outcome.sections)} section(s) in "
        f"{outcome.elapsed:.2f}s -- {counts['PASS']} pass, "
        f"{counts['FAIL']} fail, {counts['PARTIAL']} partial"
    )
    return "\n".join(parts)


def summarize_section(section: SectionOutcome) -> str:
    counts = section.counts
    return (
        f"{section.name} [{section.kind}]: {len(section.records)} points "
        f"({section.executed} run, {section.skipped} resumed), "
        f"{counts['FAIL']} fail, {counts['PARTIAL']} partial"
    )
