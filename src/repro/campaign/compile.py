"""Compilation: campaign points -> PR-1 engine tasks.

A section's crossed :class:`~repro.campaign.spec.CampaignPoint` list
maps one-to-one onto :class:`~repro.engine.engine.ExecutionTask`\\ s:
the point index is the task index, the point seed is the task seed,
and the task params carry ``kind`` plus the point's param dict, which
is exactly what :func:`repro.campaign.executors.campaign_point_task`
consumes in a worker process.  Because the task list is a pure
function of the spec, the engine's checkpoint contract applies
verbatim: a section's JSONL is byte-identical across worker counts
and resumable by index/seed/params match.

Validation happens here, before any work runs: every point is passed
through its executor's ``validate_point``, so a typo'd scenario name
in axis position 40 fails the whole campaign at compile time instead
of forty minutes in.
"""

from __future__ import annotations

import json
from typing import List

from repro.campaign.executors import executor_for
from repro.campaign.spec import CampaignSpec, Section, SpecError
from repro.engine.engine import ExecutionTask


def _json_safe(section: str, params: dict) -> dict:
    """Round-trip params through JSON so checkpoint resume comparisons
    (which see decoded JSON) match the in-memory task params exactly."""
    try:
        return json.loads(json.dumps(params))
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"section {section!r} has non-JSON-safe params: {exc}"
        ) from exc


def compile_section(
    section: Section, root_seed: int = 0
) -> List[ExecutionTask]:
    """Validate and compile one section into ordered engine tasks."""
    executor = executor_for(section.kind)
    tasks: List[ExecutionTask] = []
    for point in section.points(root_seed):
        params = _json_safe(section.name, point.params)
        executor.validate_point(params)
        tasks.append(ExecutionTask(
            point.index,
            point.seed,
            (("kind", section.kind), ("point", params)),
        ))
    if not tasks:
        raise SpecError(f"section {section.name!r} compiles to no points")
    return tasks


def compile_spec(spec: CampaignSpec) -> dict:
    """Compile every section; returns ``{section name: [tasks]}``."""
    if not spec.sections:
        raise SpecError("the spec has no sections")
    return {
        section.name: compile_section(section, spec.root_seed)
        for section in spec.sections
    }
