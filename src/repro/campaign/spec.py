"""The declarative campaign spec: axes crossed into concrete points.

A :class:`CampaignSpec` is an ordered list of :class:`Section`\\ s; each
section names an executor ``kind`` (``check``, ``fuzz``, ``stress``,
``sweep``, ``lin`` -- see :mod:`repro.campaign.executors`), a set of
:class:`Axis` values to cross, fixed ``params`` shared by every point,
and the seeds to run each crossed combination under.  Crossing the
axes (in declaration order, seeds innermost) yields the section's
:class:`CampaignPoint` list -- the concrete, JSON-safe units of work
that :mod:`repro.campaign.compile` turns into engine tasks.

The same spec value is constructible three ways:

- **builder API** -- ``CampaignSpec("nightly").section("mc", "check")
  .axis("scenario", "alg1-w1-r1", "alg2-w1-r1")`` (each call returns
  the object it extended, so specs chain);
- **file** -- :func:`load_spec` reads TOML (Python 3.11+) or JSON;
- **CLI synthesis** -- :func:`spec_from_cli` maps a parsed argparse
  namespace of an existing subcommand (``sweep``/``check``/``fuzz``/
  ``stress``) onto the equivalent one-section spec, which is what the
  per-subcommand ``--print-spec`` shims emit.

Seed semantics: ``seeds`` may be an explicit list of integers (used
verbatim for every crossed combination -- how ``--seed N`` flags map
onto specs) or an integer count ``N``, in which case ``N`` seeds are
derived per combination from the spec's ``root_seed`` and the
combination's canonical identity (:func:`repro.engine.seeds.derive_seed`
-- the :func:`repro.engine.engine.make_tasks` convention), so adding an
axis value never perturbs any other combination's seeds.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.seeds import derive_seed


class SpecError(ValueError):
    """A malformed campaign spec (bad file, unknown kind, empty axis)."""


@dataclass(frozen=True)
class Axis:
    """One named dimension of a section's design matrix."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"axis name must be a string, got {self.name!r}")
        if not self.values:
            raise SpecError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class CampaignPoint:
    """One concrete unit of campaign work: a kind, params and a seed."""

    section: str
    kind: str
    index: int
    seed: int
    params: Dict[str, Any]


class Section:
    """One campaign section: an executor kind plus a design matrix."""

    def __init__(
        self,
        name: str,
        kind: str,
        *,
        axes: Optional[Iterable[Axis]] = None,
        params: Optional[Dict[str, Any]] = None,
        seeds: Union[int, Sequence[int]] = (0,),
    ) -> None:
        if not name or not isinstance(name, str):
            raise SpecError(f"section name must be a string, got {name!r}")
        self.name = name
        self.kind = kind
        self.axes: List[Axis] = list(axes or ())
        self.params: Dict[str, Any] = dict(params or {})
        self.seeds = self._check_seeds(seeds)

    @staticmethod
    def _check_seeds(
        seeds: Union[int, Sequence[int]]
    ) -> Union[int, tuple]:
        if isinstance(seeds, bool):
            raise SpecError("seeds must be an int count or a list of ints")
        if isinstance(seeds, int):
            if seeds < 1:
                raise SpecError("a seed count must be at least 1")
            return seeds
        out = tuple(seeds)
        if not out or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in out
        ):
            raise SpecError("seeds must be a non-empty list of ints")
        return out

    # -- builder API -------------------------------------------------------

    def axis(self, name: str, *values: Any) -> "Section":
        """Add an axis (chainable).  One call, one dimension."""
        if any(existing.name == name for existing in self.axes):
            raise SpecError(f"duplicate axis {name!r}")
        if name in self.params:
            raise SpecError(f"{name!r} is already a fixed param")
        self.axes.append(Axis(name, tuple(values)))
        return self

    def param(self, **values: Any) -> "Section":
        """Fix shared parameters for every point (chainable)."""
        for key in values:
            if any(existing.name == key for existing in self.axes):
                raise SpecError(f"{key!r} is already an axis")
        self.params.update(values)
        return self

    def seed_list(self, *seeds: int) -> "Section":
        """Run every crossed combination under these seeds (chainable)."""
        self.seeds = self._check_seeds(seeds)
        return self

    # -- crossing ----------------------------------------------------------

    def combinations(self) -> List[Dict[str, Any]]:
        """The crossed design matrix, axes in declaration order."""
        combos: List[Dict[str, Any]] = [dict(self.params)]
        for axis in self.axes:
            combos = [
                {**combo, axis.name: value}
                for combo in combos
                for value in axis.values
            ]
        return combos

    def points(self, root_seed: int = 0) -> List[CampaignPoint]:
        """Cross axes x seeds into ordered, concrete campaign points."""
        points: List[CampaignPoint] = []
        for combo in self.combinations():
            if isinstance(self.seeds, int):
                identity = json.dumps(
                    {"section": self.name, "kind": self.kind,
                     "params": combo},
                    sort_keys=True,
                )
                seeds = [
                    derive_seed(root_seed, identity, k)
                    for k in range(self.seeds)
                ]
            else:
                seeds = list(self.seeds)
            for seed in seeds:
                points.append(CampaignPoint(
                    section=self.name,
                    kind=self.kind,
                    index=len(points),
                    seed=int(seed),
                    params=dict(combo),
                ))
        return points

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.axes:
            data["axes"] = {
                axis.name: list(axis.values) for axis in self.axes
            }
        if self.params:
            data["params"] = dict(self.params)
        seeds = self.seeds
        data["seeds"] = seeds if isinstance(seeds, int) else list(seeds)
        return data


@dataclass
class CampaignSpec:
    """An ordered collection of sections sharing one root seed."""

    name: str = "campaign"
    sections: List[Section] = field(default_factory=list)
    root_seed: int = 0
    workers: int = 0  # spec-level default; CLI --workers overrides

    # -- builder API -------------------------------------------------------

    def section(
        self,
        name: str,
        kind: str,
        *,
        seeds: Union[int, Sequence[int]] = (0,),
        **params: Any,
    ) -> Section:
        """Append a section and return *it* (so ``.axis(...)`` chains)."""
        if any(existing.name == name for existing in self.sections):
            raise SpecError(f"duplicate section name {name!r}")
        sec = Section(name, kind, params=params, seeds=seeds)
        self.sections.append(sec)
        return sec

    def points(self) -> List[CampaignPoint]:
        out: List[CampaignPoint] = []
        for sec in self.sections:
            out.extend(sec.points(self.root_seed))
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "root_seed": self.root_seed,
            "workers": self.workers,
            "sections": [sec.to_dict() for sec in self.sections],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise SpecError("a campaign spec must be a table/object")
        unknown = set(data) - {
            "name", "root_seed", "root-seed", "workers", "sections",
            "section",
        }
        if unknown:
            raise SpecError(
                f"unknown spec key(s): {', '.join(sorted(unknown))}"
            )
        # TOML idiom is [[section]]; JSON idiom is "sections": [...].
        raw_sections = data.get("sections", data.get("section", []))
        if not isinstance(raw_sections, list) or not raw_sections:
            raise SpecError("a spec needs at least one [[section]]")
        spec = cls(
            name=str(data.get("name", "campaign")),
            root_seed=int(data.get("root_seed",
                                   data.get("root-seed", 0))),
            workers=int(data.get("workers", 0)),
        )
        for entry in raw_sections:
            if not isinstance(entry, dict):
                raise SpecError("each section must be a table/object")
            extra = set(entry) - {"name", "kind", "axes", "params", "seeds"}
            if extra:
                raise SpecError(
                    f"unknown section key(s): {', '.join(sorted(extra))}"
                )
            if "kind" not in entry:
                raise SpecError("each section needs a kind")
            axes_data = entry.get("axes", {})
            if not isinstance(axes_data, dict):
                raise SpecError("section axes must be a table of lists")
            axes = []
            for axis_name, values in axes_data.items():
                if not isinstance(values, list):
                    raise SpecError(
                        f"axis {axis_name!r} must map to a list of values"
                    )
                axes.append(Axis(axis_name, tuple(values)))
            params = entry.get("params", {})
            if not isinstance(params, dict):
                raise SpecError("section params must be a table")
            sec = Section(
                str(entry.get("name", entry["kind"])),
                str(entry["kind"]),
                axes=axes,
                params=params,
                seeds=entry.get("seeds", (0,)),
            )
            if any(
                other.name == sec.name
                for other in spec.sections
            ):
                raise SpecError(f"duplicate section name {sec.name!r}")
            spec.sections.append(sec)
        return spec


# -- file loading ----------------------------------------------------------

def loads_spec(text: str, *, format: str = "toml") -> CampaignSpec:
    """Parse spec text.  ``format`` is ``"toml"`` or ``"json"``."""
    if format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"bad JSON spec: {exc}") from exc
        return CampaignSpec.from_dict(data)
    if format != "toml":
        raise SpecError(f"unknown spec format {format!r}")
    try:
        import tomllib
    except ImportError as exc:  # Python < 3.11
        raise SpecError(
            "TOML specs need Python 3.11+ (tomllib); use a .json spec"
        ) from exc
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError(f"bad TOML spec: {exc}") from exc
    return CampaignSpec.from_dict(data)


def load_spec(path: str) -> CampaignSpec:
    """Load a spec file; ``.json`` selects JSON, anything else TOML."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    format = "json" if path.endswith(".json") else "toml"
    return loads_spec(text, format=format)


# -- TOML emission (the restricted spec subset only) -----------------------

def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise SpecError(f"cannot emit {type(value).__name__} as TOML")


def dumps_spec(spec: CampaignSpec) -> str:
    """Emit a spec as TOML (the inverse of :func:`loads_spec`).

    Nested ``params`` tables (e.g. a fuzz section's ``sampler_params``)
    are emitted as TOML inline tables, which ``tomllib`` reads back.
    """
    out = io.StringIO()
    out.write(f"name = {_toml_value(spec.name)}\n")
    if spec.root_seed:
        out.write(f"root_seed = {_toml_value(spec.root_seed)}\n")
    if spec.workers:
        out.write(f"workers = {_toml_value(spec.workers)}\n")
    for sec in spec.sections:
        data = sec.to_dict()
        out.write("\n[[section]]\n")
        out.write(f"name = {_toml_value(data['name'])}\n")
        out.write(f"kind = {_toml_value(data['kind'])}\n")
        out.write(f"seeds = {_toml_value(data['seeds'])}\n")
        if data.get("axes"):
            out.write("[section.axes]\n")
            for axis_name, values in data["axes"].items():
                out.write(f"{axis_name} = {_toml_value(values)}\n")
        if data.get("params"):
            out.write("[section.params]\n")
            for key, value in data["params"].items():
                if isinstance(value, dict):
                    inline = ", ".join(
                        f"{k} = {_toml_value(v)}"
                        for k, v in value.items()
                    )
                    out.write(f"{key} = {{{inline}}}\n")
                else:
                    out.write(f"{key} = {_toml_value(value)}\n")
    return out.getvalue()


# -- CLI synthesis ---------------------------------------------------------

def spec_from_cli(kind: str, args: Any) -> CampaignSpec:
    """The campaign spec equivalent of one legacy CLI invocation.

    ``args`` is the parsed argparse namespace of the ``sweep``,
    ``check``, ``fuzz`` or ``stress`` subcommand; the result is a
    one-section spec whose points reproduce that invocation's verdicts
    (the ``--print-spec`` deprecation shim).
    """
    spec = CampaignSpec(name=f"cli-{kind}")
    if kind == "sweep":
        sec = spec.section(
            "sweep", "sweep", seeds=args.seeds, object=args.object,
        )
        spec.root_seed = args.root_seed
        if args.object == "register":
            sec.axis("num_readers", *args.readers)
            sec.axis("num_writers", *args.writers)
        else:
            sec.axis("substrate", "afek", "atomic")
    elif kind == "check":
        from repro.mc.scenarios import E13_SUITE

        names = args.scenario or [key for _, key in E13_SUITE]
        sec = spec.section(
            "check", "check",
            max_executions=args.max_executions,
            max_depth=args.max_depth,
            reduce=not args.baseline,
            fingerprints=not (args.baseline or args.no_fingerprints),
        )
        sec.axis("scenario", *names)
    elif kind == "fuzz":
        from repro.fuzz import DEFAULT_MAX_STEPS
        from repro.mc.scenarios import E13_SUITE

        names = args.target or [key for _, key in E13_SUITE]
        sampler_params: Dict[str, Any] = {}
        if args.sampler == "pct":
            sampler_params["depth"] = args.pct_depth
        if args.sampler == "fault":
            sampler_params["max_rate_per_10k"] = args.fault_max_rate
        sec = spec.section(
            "fuzz", "fuzz", seeds=[args.seed],
            sampler=args.sampler,
            schedules=args.schedules,
            batch=args.batch,
            shrink=not args.no_shrink,
        )
        if args.max_steps != DEFAULT_MAX_STEPS:
            sec.param(max_steps=args.max_steps)
        if sampler_params:
            sec.param(sampler_params=sampler_params)
        sec.axis("target", *names)
    elif kind == "stress":
        sec = spec.section(
            "stress", "stress", seeds=[args.seed],
            object=args.object,
            runtime=args.runtime,
            ops=args.ops if args.ops is not None else 25,
        )
        if (args.readers is not None or args.writers is not None
                or args.auditors is not None):
            sec.param(
                readers=args.readers or 0,
                writers=args.writers or 0,
                auditors=args.auditors or 0,
            )
        else:
            sec.param(threads=args.threads)
        if args.faults:
            sec.param(faults=args.faults, fault_rate=args.fault_rate)
    else:
        raise SpecError(f"no CLI synthesis for kind {kind!r}")
    return spec
