"""The campaign runner: sections through the engine, in order.

Each section runs as one engine invocation
(:func:`repro.engine.engine.run_tasks`) over its compiled tasks, with
its own JSONL checkpoint at ``<out>.<section>.jsonl``.  Resume is
therefore *per section*: re-running an interrupted campaign skips
every section whose records are complete (the engine validates and
reuses them without executing anything) and picks the interrupted
section back up mid-file -- finish the check section, crash during
fuzz, resume straight into the fuzz section's remaining points.

Sections whose executor is ``serial_only`` (stress) run with one
worker regardless of the requested fan-out; everything else uses the
campaign's worker pool.  Exit-code contract, aggregated bottom-up from
point verdicts: ``0`` all points PASS, ``1`` any point FAIL, ``2`` no
failures but at least one PARTIAL (a budget expired somewhere) -- the
same 0/1/2 convention every subcommand honours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.compile import compile_section
from repro.campaign.executors import campaign_point_task, executor_for
from repro.campaign.spec import CampaignSpec, SpecError

VERDICTS = ("PASS", "FAIL", "PARTIAL")


@dataclass
class SectionOutcome:
    """One section's aggregated result."""

    name: str
    kind: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    workers: int = 1
    elapsed: float = 0.0
    checkpoint: Optional[str] = None

    @property
    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for record in self.records:
            out[record["payload"]["verdict"]] += 1
        return out

    @property
    def verdict(self) -> str:
        counts = self.counts
        if counts["FAIL"]:
            return "FAIL"
        return "PARTIAL" if counts["PARTIAL"] else "PASS"


@dataclass
class CampaignOutcome:
    """Aggregate result of one campaign run."""

    spec: CampaignSpec
    sections: List[SectionOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for section in self.sections:
            for verdict, n in section.counts.items():
                out[verdict] += n
        return out

    @property
    def points(self) -> int:
        return sum(len(section.records) for section in self.sections)

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 violation, 2 PARTIAL."""
        counts = self.counts
        if counts["FAIL"]:
            return 1
        return 2 if counts["PARTIAL"] else 0


def section_checkpoint(out: Optional[str], section: str) -> Optional[str]:
    """The per-section JSONL path for a campaign ``--out`` base."""
    return f"{out}.{section}.jsonl" if out else None


def run_spec(
    spec: CampaignSpec,
    *,
    workers: Optional[int] = None,
    out: Optional[str] = None,
    resume: bool = True,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> CampaignOutcome:
    """Run a campaign spec; see the module docstring.

    ``workers=None`` takes the spec's own default (``spec.workers``,
    itself 0 = one per CPU).  ``only`` restricts the run to the named
    sections, in spec order.  ``progress`` (if given) is called as
    ``progress(section_name, done, total)`` per completed point.
    """
    from repro.engine.engine import run_tasks

    if only:
        known = {section.name for section in spec.sections}
        missing = [name for name in only if name not in known]
        if missing:
            raise SpecError(
                f"unknown section(s): {', '.join(missing)} "
                f"(spec has: {', '.join(sorted(known))})"
            )
    sections = [
        section for section in spec.sections
        if not only or section.name in only
    ]
    requested = spec.workers if workers is None else workers
    start = time.perf_counter()
    outcome = CampaignOutcome(spec=spec)
    for section in sections:
        tasks = compile_section(section, spec.root_seed)
        executor = executor_for(section.kind)
        section_workers = 1 if executor.serial_only else (
            requested or _cpu_count()
        )

        def section_progress(done, total, record, _name=section.name):
            if progress is not None:
                progress(_name, done, total)

        report = run_tasks(
            campaign_point_task,
            tasks,
            workers=section_workers,
            checkpoint=section_checkpoint(out, section.name),
            resume=resume,
            progress=section_progress,
        )
        outcome.sections.append(SectionOutcome(
            name=section.name,
            kind=section.kind,
            records=report.records,
            executed=report.executed,
            skipped=report.skipped,
            workers=report.workers,
            elapsed=report.elapsed,
            checkpoint=report.checkpoint,
        ))
    outcome.elapsed = time.perf_counter() - start
    return outcome


def _cpu_count() -> int:
    import os

    return os.cpu_count() or 1
