"""Shared engine/output option dataclasses.

Every engine-backed subcommand used to hand-roll the same
``--workers`` / ``--out`` / ``--no-resume`` argparse wiring through a
private ``_add_engine_options`` helper copy-wired across the CLI
module.  These two dataclasses are now the single home of that
vocabulary, consumed from *both* directions:

- the argparse wiring (``add_to_parser`` declares the flags,
  ``from_args`` reads them back), and
- the campaign layer (:mod:`repro.campaign.spec`), where the same
  values arrive from a spec file's ``[defaults]`` table instead of
  from flags.

Keeping one definition means the worker-resolution rule (``0`` = one
per CPU, ``1`` = serial) and the checkpoint/resume semantics cannot
drift between subcommands.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Optional

#: The default ``--out`` help used when a subcommand does not override
#: it; individual commands append what one record means for them.
DEFAULT_OUT_HELP = (
    "JSONL checkpoint: one canonical record per execution; rerunning "
    "with the same file resumes an interrupted run"
)


@dataclass
class EngineOptions:
    """Worker fan-out for engine-backed commands.

    ``workers == 0`` means one worker per CPU; ``1`` means serial (the
    engine runs tasks inline, no pool).  ``resolved`` applies that rule.
    """

    workers: int = 0

    @property
    def resolved(self) -> int:
        return self.workers or os.cpu_count() or 1

    @staticmethod
    def add_to_parser(
        parser: argparse.ArgumentParser,
        *,
        default: int = 0,
        help: str = (
            "worker processes (default: one per CPU; 1 = serial)"
        ),
    ) -> None:
        parser.add_argument(
            "--workers", type=int, default=default, metavar="W", help=help
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "EngineOptions":
        return cls(workers=args.workers)


@dataclass
class OutputOptions:
    """Checkpoint path and resume behaviour for engine-backed commands.

    ``resume=True`` (the default) reuses any valid records already in
    ``out``; ``--no-resume`` reruns everything.
    """

    out: Optional[str] = None
    resume: bool = True

    @staticmethod
    def add_to_parser(
        parser: argparse.ArgumentParser,
        *,
        out_help: str = DEFAULT_OUT_HELP,
        include_resume: bool = True,
    ) -> None:
        parser.add_argument(
            "--out", default=None, metavar="FILE", help=out_help
        )
        if include_resume:
            parser.add_argument(
                "--no-resume", action="store_true",
                help="ignore any existing records in --out and rerun "
                "everything",
            )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "OutputOptions":
        return cls(
            out=args.out,
            resume=not getattr(args, "no_resume", False),
        )
