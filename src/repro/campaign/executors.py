"""Campaign executors: one protocol, five subsystems.

An :class:`Executor` turns one :class:`~repro.campaign.spec.CampaignPoint`
into a canonical JSON payload carrying a ``verdict`` -- ``"PASS"``,
``"FAIL"`` or ``"PARTIAL"`` -- plus deterministic evidence counters.
This is the dispatch seam the per-subcommand CLI glue used to hand-roll
six times over: each executor wraps the *same* underlying entry point
its subcommand calls (``explore`` for ``check``, ``run_campaign`` for
``fuzz``, ``run_stress`` for ``stress``, the sweep task functions for
``sweep``, ``lin_check_task`` for ``lin``), so a campaign point's
verdict matches the equivalent standalone invocation exactly.

Determinism: payloads must be pure functions of ``(seed, params)`` so
the engine's byte-identical JSONL contract holds for campaign
checkpoints.  The stress executor therefore strips all wall-clock
fields (throughput, latency) from its payload -- timing belongs to the
interactive ``repro stress`` report, never to campaign records -- and
``serial_only`` keeps stress points out of the worker pool: the process
runtime spawns OS processes, which daemonic pool workers may not, and
thread-runtime timing under pool contention would be meaningless.

``campaign_point_task`` is the single module-level engine task function
(picklable by reference) through which every campaign point runs.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.campaign.spec import SpecError

PASS, FAIL, PARTIAL = "PASS", "FAIL", "PARTIAL"


class Executor:
    """One subsystem's adapter onto the campaign point contract.

    Subclasses set ``kind`` (the spec's section ``kind`` value) and
    implement :meth:`execute`; ``validate_point`` may reject bad params
    at compile time with :class:`~repro.campaign.spec.SpecError`, before
    any work runs.  ``serial_only`` forces the section onto one worker
    (see the module docstring).
    """

    kind: str = ""
    serial_only: bool = False

    def validate_point(self, params: Dict[str, Any]) -> None:
        """Raise :class:`SpecError` for params this kind cannot run."""

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError


_REGISTRY: Dict[str, Executor] = {}


def register_executor(executor: Executor) -> Executor:
    if not executor.kind:
        raise ValueError("executor needs a kind")
    _REGISTRY[executor.kind] = executor
    return executor


def executor_for(kind: str) -> Executor:
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SpecError(
            f"unknown section kind {kind!r} (known: {known})"
        ) from None


def executor_names() -> List[str]:
    return sorted(_REGISTRY)


def campaign_point_task(
    seed: int, kind: str = "check", point: Dict[str, Any] = None
) -> Dict[str, Any]:
    """The engine task function every campaign point dispatches through."""
    return _REGISTRY[kind].execute(seed, dict(point or {}))


def _require(params: Dict[str, Any], key: str, kind: str) -> None:
    if key not in params:
        raise SpecError(
            f"a {kind!r} point needs a {key!r} value "
            "(as an axis or a param)"
        )


def _unknown(params: Dict[str, Any], allowed, kind: str) -> None:
    extra = set(params) - set(allowed)
    if extra:
        raise SpecError(
            f"unknown {kind!r} point param(s): "
            f"{', '.join(sorted(extra))} (allowed: "
            f"{', '.join(sorted(allowed))})"
        )


class CheckExecutor(Executor):
    """Model checking: one point = one scenario explored to its budgets.

    The ``seed`` is part of the record but unused -- exploration is
    exhaustive, not sampled.
    """

    kind = "check"
    _ALLOWED = (
        "scenario", "max_executions", "max_depth", "reduce",
        "fingerprints",
    )

    def validate_point(self, params: Dict[str, Any]) -> None:
        _require(params, "scenario", self.kind)
        _unknown(params, self._ALLOWED, self.kind)
        from repro.mc.scenarios import scenario_names

        if params["scenario"] not in scenario_names():
            raise SpecError(
                f"unknown scenario {params['scenario']!r} "
                "(see python -m repro check --list)"
            )

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.mc import ExplorationBudgetExceeded, explore
        from repro.mc.scenarios import get_scenario

        factory, check = get_scenario(params["scenario"])()
        budget_note = None
        try:
            report = explore(
                factory, check,
                max_executions=params.get("max_executions", 300_000),
                max_depth=params.get("max_depth", 200),
                reduce=params.get("reduce", True),
                fingerprints=params.get(
                    "fingerprints", params.get("reduce", True)
                ),
            )
        except ExplorationBudgetExceeded as exc:
            report = exc.report
            budget_note = str(exc)
        # A proven violation outranks an exhausted budget (the repro
        # check convention): partial coverage that found a bug is FAIL.
        verdict = (
            FAIL if report.violations
            else (PARTIAL if budget_note else PASS)
        )
        return {
            "verdict": verdict,
            "scenario": params["scenario"],
            "executions": report.executions,
            "distinct_states": report.distinct_states,
            "violations": [str(v) for v in report.violations[:5]],
            "budget": budget_note,
        }

register_executor(CheckExecutor())


class FuzzExecutor(Executor):
    """Schedule fuzzing: one point = one seeded mini-campaign of one
    target, batched exactly as ``repro fuzz --seed <point seed>`` would
    batch it, so violations (and their shrunk counterexample traces,
    which ride along in the payload) match the standalone CLI."""

    kind = "fuzz"
    _ALLOWED = (
        "target", "sampler", "schedules", "batch", "max_steps",
        "shrink", "shrink_checks", "sampler_params", "stop_on_violation",
    )

    def validate_point(self, params: Dict[str, Any]) -> None:
        _require(params, "target", self.kind)
        _unknown(params, self._ALLOWED, self.kind)
        from repro.fuzz import sampler_names, target_names

        if params["target"] not in target_names():
            raise SpecError(
                f"unknown fuzz target {params['target']!r} "
                "(see python -m repro fuzz --list)"
            )
        sampler = params.get("sampler", "uniform")
        if sampler not in sampler_names():
            raise SpecError(f"unknown sampler {sampler!r}")

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.fuzz.campaign import run_campaign
        from repro.fuzz.executor import DEFAULT_MAX_STEPS

        report = run_campaign(
            [params["target"]],
            schedules=params.get("schedules", 256),
            batch=params.get("batch", 32),
            sampler=params.get("sampler", "uniform"),
            sampler_params=params.get("sampler_params"),
            root_seed=seed,
            max_steps=params.get("max_steps", DEFAULT_MAX_STEPS),
            shrink=params.get("shrink", True),
            shrink_checks=params.get("shrink_checks", 2000),
            workers=1,
            stop_on_violation=params.get("stop_on_violation", True),
        )
        verdict = FAIL if report.violations else PASS
        return {
            "verdict": verdict,
            "target": params["target"],
            "sampler": params.get("sampler", "uniform"),
            "schedules": report.schedules,
            "steps": report.steps,
            "incomplete": report.incomplete,
            "violations": report.violations,
            "verdicts": report.verdicts,
            "first_violation": report.first_violation,
        }

register_executor(FuzzExecutor())


class StressExecutor(Executor):
    """Runtime stress: one point = one bounded, validated stress run.

    Campaign stress points require an op budget (``ops``): duration
    runs measure wall-clock throughput, which cannot produce
    deterministic records.  The payload keeps only the verdict-bearing
    fields; throughput and latency stay in the interactive CLI report.
    """

    kind = "stress"
    serial_only = True
    _ALLOWED = (
        "object", "runtime", "threads", "readers", "writers",
        "auditors", "ops", "faults", "fault_rate", "validate",
        "max_substrate", "snapshot_substrate",
    )

    def validate_point(self, params: Dict[str, Any]) -> None:
        _require(params, "object", self.kind)
        _unknown(params, self._ALLOWED, self.kind)
        from repro.rt import STRESS_OBJECTS, STRESS_RUNTIMES

        if params["object"] not in STRESS_OBJECTS:
            raise SpecError(f"unknown stress object {params['object']!r}")
        runtime = params.get("runtime", "thread")
        if runtime not in STRESS_RUNTIMES:
            raise SpecError(f"unknown stress runtime {runtime!r}")
        ops = params.get("ops", 16)
        if not isinstance(ops, int) or ops < 1:
            raise SpecError(
                "campaign stress points need a bounded per-worker op "
                "budget (ops >= 1); duration runs are not deterministic"
            )
        faults = params.get("faults")
        if faults:
            from repro.faults import parse_fault_families
            from repro.rt.stress import supported_fault_families

            families = parse_fault_families(faults)
            supported = supported_fault_families(runtime)
            bad = [f for f in families if f not in supported]
            if bad:
                raise SpecError(
                    f"fault families {', '.join(bad)} are not supported "
                    f"on the {runtime!r} runtime (supported: "
                    f"{', '.join(supported)})"
                )

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.analysis.fastlin import LIN_UNDECIDED
        from repro.rt import run_stress

        faults = params.get("faults") or None
        report = run_stress(
            params["object"],
            threads=params.get("threads", 4),
            readers=params.get("readers"),
            writers=params.get("writers"),
            auditors=params.get("auditors"),
            ops=params.get("ops", 16),
            seed=seed,
            validate=params.get("validate", True),
            max_substrate=params.get("max_substrate", "atomic"),
            snapshot_substrate=params.get("snapshot_substrate", "afek"),
            runtime=params.get("runtime", "thread"),
            faults=faults,
            fault_rate=params.get("fault_rate", 100),
            record_latency=False,
        )
        if not report.ok:
            verdict = FAIL
        elif report.validated and report.lin_status == LIN_UNDECIDED:
            verdict = PARTIAL
        else:
            verdict = PASS
        return {
            "verdict": verdict,
            "object": report.object,
            "runtime": report.runtime,
            "readers": report.readers,
            "writers": report.writers,
            "auditors": report.auditors,
            "ops_budget": report.ops_budget,
            "validated": report.validated,
            "lin_ok": report.lin_ok,
            "lin_status": report.lin_status,
            "audit_ok": report.audit_ok,
            "faults": report.faults,
        }

register_executor(StressExecutor())


class SweepExecutor(Executor):
    """Seeded sweeps: one point = one fully-checked seeded execution
    (the exact granularity of ``repro sweep``'s engine tasks)."""

    kind = "sweep"
    _REGISTER = (
        "num_readers", "num_writers", "num_auditors", "reads_per_reader",
        "writes_per_writer", "audits_per_auditor",
    )
    _SNAPSHOT = (
        "components", "num_scanners", "updates_per_component",
        "scans_per_scanner", "substrate",
    )

    def validate_point(self, params: Dict[str, Any]) -> None:
        _require(params, "object", self.kind)
        kind_ = params["object"]
        if kind_ == "register":
            allowed = ("object",) + self._REGISTER
        elif kind_ == "snapshot":
            allowed = ("object",) + self._SNAPSHOT
        else:
            raise SpecError(
                f"unknown sweep object {kind_!r} "
                "(choose register or snapshot)"
            )
        _unknown(params, allowed, self.kind)

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.engine.tasks import (
            register_sweep_task,
            snapshot_sweep_task,
        )

        kwargs = {k: v for k, v in params.items() if k != "object"}
        if params["object"] == "register":
            payload = register_sweep_task(seed, **kwargs)
        else:
            payload = snapshot_sweep_task(seed, **kwargs)
        fails = [
            key for key in
            ("lin_fail", "audit_fail", "structural_fail")
            if payload.get(key)
        ]
        payload = dict(payload)
        payload["verdict"] = FAIL if fails else PASS
        payload["object"] = params["object"]
        return payload

register_executor(SweepExecutor())


class LinExecutor(Executor):
    """Batched linearizability verdicts: one point = one recorded
    history checked against a named spec (``repro lin``'s task)."""

    kind = "lin"
    _ALLOWED = ("history", "spec", "spec_params", "max_nodes")

    def validate_point(self, params: Dict[str, Any]) -> None:
        _require(params, "history", self.kind)
        _unknown(params, self._ALLOWED, self.kind)
        from repro.analysis.fastlin import spec_names

        spec = params.get("spec", "register")
        if spec not in spec_names():
            raise SpecError(f"unknown lin spec {spec!r}")

    def execute(self, seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.analysis.fastlin import LIN_FAIL, LIN_OK
        from repro.engine.tasks import lin_check_task

        kwargs = dict(params)
        kwargs.setdefault("spec", "register")
        payload = dict(lin_check_task(seed, **kwargs))
        status = payload["status"]
        payload["verdict"] = (
            PASS if status == LIN_OK
            else (FAIL if status == LIN_FAIL else PARTIAL)
        )
        return payload

register_executor(LinExecutor())
