"""repro.campaign: one declarative spec drives every subsystem.

Sweeps, model checks, stress runs, fuzz campaigns and batched
linearizability verdicts used to be five hand-rolled CLI matrices.
This package redesigns the public API around a single declarative
campaign spec: a :class:`CampaignSpec` holds ordered sections, each
section crosses :class:`Axis` values (scenarios x runtimes x samplers
x fault plans x seeds) into concrete :class:`CampaignPoint`\\ s, and
:mod:`repro.campaign.compile` lowers those points onto the PR-1
execution engine's tasks.  One command --

    python -m repro campaign run spec.toml --workers 8 --out nightly

-- runs the whole matrix under the engine's byte-identical resumable
JSONL contract, with per-section checkpoints: kill it mid-fuzz and the
rerun skips the finished check section entirely and resumes the fuzz
section mid-file, producing byte-identical records to an uninterrupted
run.

The same spec value is constructible from the Python builder API, from
a TOML/JSON file (:func:`load_spec`), or synthesized from legacy CLI
flags (:func:`spec_from_cli` -- the ``--print-spec`` shim on the old
subcommands).  Execution dispatches through the :class:`Executor`
protocol (:mod:`repro.campaign.executors`): each executor wraps the
same entry point its legacy subcommand calls, so per-point verdicts
match standalone ``repro check`` / ``fuzz`` / ``stress`` invocations
exactly.  DESIGN.md section 12 carries the full model.
"""

from repro.campaign.compile import compile_section, compile_spec
from repro.campaign.executors import (
    Executor,
    campaign_point_task,
    executor_for,
    executor_names,
    register_executor,
)
from repro.campaign.options import EngineOptions, OutputOptions
from repro.campaign.report import axis_slices, render_outcome
from repro.campaign.run import (
    CampaignOutcome,
    SectionOutcome,
    run_spec,
    section_checkpoint,
)
from repro.campaign.spec import (
    Axis,
    CampaignPoint,
    CampaignSpec,
    Section,
    SpecError,
    dumps_spec,
    load_spec,
    loads_spec,
    spec_from_cli,
)

__all__ = [
    "Axis",
    "CampaignOutcome",
    "CampaignPoint",
    "CampaignSpec",
    "EngineOptions",
    "Executor",
    "OutputOptions",
    "Section",
    "SectionOutcome",
    "SpecError",
    "axis_slices",
    "campaign_point_task",
    "compile_section",
    "compile_spec",
    "dumps_spec",
    "executor_for",
    "executor_names",
    "load_spec",
    "loads_spec",
    "register_executor",
    "render_outcome",
    "run_spec",
    "section_checkpoint",
    "spec_from_cli",
]
