"""Auditing without Leaks Despite Curiosity (PODC 2025) -- reproduction.

Wait-free, linearizable auditable shared objects that track *effective*
reads while preventing curious readers from learning anything beyond the
values they actually read:

- :class:`~repro.core.AuditableRegister` (Algorithm 1),
- :class:`~repro.core.AuditableMaxRegister` (Algorithm 2),
- :class:`~repro.core.AuditableSnapshot` (Algorithm 3),
- :class:`~repro.core.AuditableVersioned` (Theorem 13),

running on a deterministic shared-memory simulator (:mod:`repro.sim`)
with full analysis tooling: linearizability checking, effectiveness
detection, audit exactness oracles and leakage measurement
(:mod:`repro.analysis`), plus the baselines the paper compares against
(:mod:`repro.baselines`).

Quickstart::

    from repro import AuditableRegister, Simulation, RandomSchedule

    sim = Simulation(schedule=RandomSchedule(seed=7))
    reg = AuditableRegister(num_readers=2)
    writer = reg.writer(sim.spawn("writer"))
    r0 = reg.reader(sim.spawn("reader-0"), 0)
    auditor = reg.auditor(sim.spawn("auditor"))

    sim.add_program("writer", [writer.write_op("secret")])
    sim.add_program("reader-0", [r0.read_op()])
    sim.add_program("auditor", [auditor.audit_op()])
    history = sim.run()
    print(history.operations(name="audit")[-1].result)
"""

from repro.core import (
    AtomicVersionedObject,
    AuditableMaxRegister,
    AuditableRegister,
    AuditableSnapshot,
    AuditableVersioned,
    Nonced,
    TypeSpec,
    counter_spec,
    journal_spec,
    kv_store_spec,
    logical_clock_spec,
)
from repro.crypto import NonceSource, OneTimePadSequence
from repro.engine import (
    EngineReport,
    ExecutionTask,
    ParallelSweep,
    derive_seed,
    make_tasks,
    run_tasks,
)
from repro.memory import BOTTOM
from repro.rt import (
    Runtime,
    SimRuntime,
    StressReport,
    ThreadRuntime,
    make_runtime,
    run_stress,
)
from repro.sim import (
    History,
    Op,
    PrioritySchedule,
    Process,
    RandomSchedule,
    ReplaySchedule,
    RoundRobinSchedule,
    Schedule,
    Simulation,
)

__version__ = "1.0.0"

__all__ = [
    "AtomicVersionedObject",
    "AuditableMaxRegister",
    "AuditableRegister",
    "AuditableSnapshot",
    "AuditableVersioned",
    "BOTTOM",
    "EngineReport",
    "ExecutionTask",
    "History",
    "Nonced",
    "NonceSource",
    "OneTimePadSequence",
    "Op",
    "ParallelSweep",
    "PrioritySchedule",
    "Process",
    "RandomSchedule",
    "ReplaySchedule",
    "RoundRobinSchedule",
    "Runtime",
    "Schedule",
    "SimRuntime",
    "Simulation",
    "StressReport",
    "ThreadRuntime",
    "TypeSpec",
    "counter_spec",
    "derive_seed",
    "journal_spec",
    "kv_store_spec",
    "logical_clock_spec",
    "make_runtime",
    "make_tasks",
    "run_stress",
    "run_tasks",
    "__version__",
]
