"""Command-line entry point.

    python -m repro                     # overview
    python -m repro experiments [E...]  # run experiment drivers
    python -m repro campaign run SPEC   # declarative multi-section campaign
    python -m repro sweep [options]     # parallel seeded sweep (engine)
    python -m repro check [options]     # model checking (repro.mc)
    python -m repro fuzz [options]      # schedule fuzzing (repro.fuzz)
    python -m repro stress [options]    # threaded stress/throughput (repro.rt)
    python -m repro lin FILE [options]  # linearizability verdict service
    python -m repro serve LOG [options] # streaming verification service
    python -m repro attacks             # run the attack gallery
    python -m repro version             # also: --version

(The ``repro`` console script, installed via pyproject, is the same
entry point.)

Campaign example -- one declarative spec crossing scenarios, runtimes,
fault settings and seeds across any of the subsystems below, run as
one resumable invocation (see DESIGN.md section 12)::

    python -m repro campaign run spec.toml --workers 4 --out nightly
    python -m repro campaign example > spec.toml   # a worked template

Each legacy subcommand accepts ``--print-spec`` to emit its campaign
equivalent instead of running.

Sweep example -- 64 derived seeds per grid point, fanned out over 4
worker processes, streamed to a resumable JSONL checkpoint::

    python -m repro sweep --seeds 64 --readers 1 2 4 --writers 1 2 \\
        --workers 4 --out sweep.jsonl

Model-checking example -- verify every interleaving of the E13 suite,
partial-order reduced, subtrees fanned over 4 workers with a resumable
checkpoint::

    python -m repro check --workers 4 --out mc.jsonl

Fuzz example -- 1024 PCT-sampled schedules of a scenario too large to
model-check, fanned over 4 workers with a resumable JSONL checkpoint,
the first violation shrunk and saved as a replayable trace::

    python -m repro fuzz --target buggy-maxreg-deep --sampler pct \\
        --schedules 1024 --workers 4 --out fuzz.jsonl \\
        --save-trace counterexample.json

    python -m repro fuzz --replay counterexample.json

Stress example -- Algorithm 1 on 8 real threads, post-validated by the
linearizability checker::

    python -m repro stress --object register --threads 8

Verdict-service example -- check recorded histories (one JSON array of
operation payloads per line) against a named spec, fanned over 4
workers, profiling nodes explored and wall time::

    python -m repro lin histories.jsonl --spec register --workers 4

Streaming-service example -- a duration-bounded stress run validated
online with bounded memory while `repro serve` follows its event log::

    python -m repro stress --object register --duration 60 --online \\
        --event-log run.jsonl &
    python -m repro serve run.jsonl --follow

Quick serial sanity passes (used by CI)::

    python -m repro sweep --smoke
    python -m repro check --smoke
    python -m repro fuzz --smoke --expect-violation
    python -m repro stress --smoke
    python -m repro serve --smoke
    python -m repro campaign run --smoke
"""

from __future__ import annotations

import sys


def _overview() -> int:
    from repro import __version__
    from repro.harness.experiment import registry
    import repro.harness.experiments  # noqa: F401 -- registers drivers

    print(f"repro {__version__} -- Auditing without Leaks Despite "
          "Curiosity (PODC 2025) reproduction")
    print()
    print("commands:")
    print("  python -m repro experiments [names]   run experiment drivers")
    print("  python -m repro campaign run SPEC     declarative campaign "
          "(crossed sections)")
    print("  python -m repro sweep [options]       parallel seeded sweep")
    print("  python -m repro check [options]       model checking "
          "(all interleavings)")
    print("  python -m repro fuzz [options]        randomized schedule "
          "fuzzing")
    print("  python -m repro stress [options]      threaded stress / "
          "throughput")
    print("  python -m repro lin FILE [options]    linearizability verdict "
          "service")
    print("  python -m repro serve LOG [options]   streaming verification "
          "service")
    print("  python -m repro attacks               run the attack gallery")
    print("  python -m repro version               print the version")
    print()
    print("examples:")
    print("  python -m repro campaign example > spec.toml && "
          "python -m repro campaign run spec.toml")
    print("  python -m repro sweep --seeds 64 --workers 4 --out sweep.jsonl")
    print("  python -m repro check --compare --workers 4 --out mc.jsonl")
    print("  python -m repro fuzz --target buggy-maxreg-deep "
          "--sampler pct --schedules 1024")
    print("  python -m repro stress --object register --threads 8")
    print()
    print("registered experiments:", " ".join(sorted(registry())))
    return 0


#: Help-epilog pointer added to every subcommand that has a campaign
#: equivalent (the deprecation path for hand-rolled CLI matrices).
_CAMPAIGN_EPILOG = (
    "This subcommand has a declarative equivalent: 'python -m repro "
    "campaign run SPEC' runs the same work as one section of a "
    "multi-section campaign spec (crossed axes, per-section resumable "
    "checkpoints).  --print-spec emits this invocation's spec instead "
    "of running it."
)


def _add_print_spec(parser) -> None:
    parser.add_argument(
        "--print-spec", action="store_true",
        help="print the equivalent campaign spec (TOML) and exit "
        "instead of running (see python -m repro campaign)",
    )


def _maybe_print_spec(kind: str, args) -> bool:
    """Handle ``--print-spec``: emit the synthesized campaign spec."""
    if not getattr(args, "print_spec", False):
        return False
    from repro.campaign import dumps_spec, spec_from_cli

    sys.stdout.write(dumps_spec(spec_from_cli(kind, args)))
    return True


def _sweep(argv) -> int:
    """The ``sweep`` subcommand: seeded executions through the engine."""
    import argparse

    from repro.campaign import EngineOptions, OutputOptions
    from repro.engine import (
        aggregate_counts,
        all_clean,
        make_tasks,
        register_sweep_task,
        run_tasks,
        snapshot_sweep_task,
    )
    from repro.harness.tables import render_table
    from repro.workloads.sweeps import Sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run seeded executions of an auditable object over a "
        "parameter grid, checking linearizability and audit exactness "
        "per execution.  Seeds are derived deterministically from "
        "--root-seed, so results depend only on the grid, never on "
        "worker count or scheduling.",
        epilog=_CAMPAIGN_EPILOG,
    )
    parser.add_argument(
        "--object", choices=("register", "snapshot"), default="register",
        help="which auditable object to sweep (default: register)",
    )
    parser.add_argument(
        "--seeds", type=int, default=16, metavar="N",
        help="seeded executions per grid point (default: 16)",
    )
    parser.add_argument(
        "--root-seed", type=int, default=0,
        help="root of the deterministic seed fan-out (default: 0)",
    )
    parser.add_argument(
        "--readers", type=int, nargs="+", default=[1, 2, 4],
        help="reader counts for the register grid (default: 1 2 4)",
    )
    parser.add_argument(
        "--writers", type=int, nargs="+", default=[1, 2],
        help="writer counts for the register grid (default: 1 2)",
    )
    EngineOptions.add_to_parser(parser)
    OutputOptions.add_to_parser(
        parser,
        out_help="JSONL checkpoint: one canonical record per execution; "
        "rerunning with the same file resumes an interrupted sweep",
    )
    _add_print_spec(parser)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny serial sweep (2 seeds, one grid point) for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.seeds, args.readers, args.writers, args.workers = 2, [1], [1], 1
    if _maybe_print_spec("sweep", args):
        return 0
    workers = EngineOptions.from_args(args).resolved
    output = OutputOptions.from_args(args)

    if args.object == "register":
        grid = Sweep({"num_readers": args.readers,
                      "num_writers": args.writers})
        task_fn = register_sweep_task
        check_fields = ("lin_fail", "audit_fail", "structural_fail")
    else:
        grid = Sweep({"substrate": ["afek", "atomic"]})
        task_fn = snapshot_sweep_task
        check_fields = ("lin_fail", "audit_fail")

    tasks = make_tasks(
        grid.points(), seeds_per_point=args.seeds, root_seed=args.root_seed
    )

    def progress(done, total, record):
        if done % 25 == 0 or done == total:
            print(f"sweep [{done}/{total}]", file=sys.stderr, flush=True)

    report = run_tasks(
        task_fn,
        tasks,
        workers=workers,
        checkpoint=output.out,
        resume=output.resume,
        progress=progress,
    )

    def point_label(record):
        return grid.point_name(record["params"])

    rows = []
    for group in aggregate_counts(report.records, key=point_label):
        row = {"point": group["group"], "executions": group["executions"]}
        for name in check_fields:
            row[name.replace("_", " ")] = group.get(name, 0)
        row["total steps"] = group.get("steps", 0)
        rows.append(row)
    print(render_table(rows))
    print()
    clean = all_clean(report.records, check_fields)
    mark = "PASS" if clean else "FAIL"
    print(
        f"  [{mark}] {report.total} executions "
        f"({report.executed} run, {report.skipped} resumed) in "
        f"{report.elapsed:.2f}s with {report.workers} worker(s); "
        "no linearizability or audit-exactness violations"
        if clean
        else f"  [{mark}] violations found -- inspect the JSONL records"
    )
    if report.checkpoint:
        print(f"  records: {report.checkpoint}")
    return 0 if clean else 1


def _check(argv) -> int:
    """The ``check`` subcommand: model checking through ``repro.mc``."""
    import argparse

    from repro.campaign import EngineOptions, OutputOptions
    from repro.harness.tables import render_table
    from repro.mc import ExplorationBudgetExceeded, explore
    from repro.mc.parallel import explore_parallel
    from repro.mc.scenarios import E13_SUITE, get_scenario, scenario_names

    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Exhaustively verify named scenarios over every "
        "interleaving (up to partial-order reduction): linearizability, "
        "audit exactness, phase structure and pad discipline are "
        "checked on each explored execution.  Budgets bound the "
        "exploration; exceeding one reports the partial evidence and "
        "exits 2.",
        epilog=_CAMPAIGN_EPILOG,
    )
    parser.add_argument(
        "--scenario", nargs="+", default=None, metavar="NAME",
        help="registered scenario names (default: the E13 suite; "
        "see --list)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="disable reduction and fingerprinting (raw enumeration)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run both raw and reduced exploration, report the "
        "reduction factor and verify the verdict sets coincide",
    )
    parser.add_argument(
        "--no-fingerprints", action="store_true",
        help="disable state-fingerprint memoisation (keep sleep sets)",
    )
    parser.add_argument(
        "--max-executions", type=int, default=300_000, metavar="N",
        help="execution budget per scenario (default: 300000); "
        "exceeding it yields a PARTIAL verdict from the executions "
        "explored so far",
    )
    parser.add_argument(
        "--max-depth", type=int, default=200, metavar="D",
        help="schedule-depth budget (default: 200)",
    )
    EngineOptions.add_to_parser(
        parser,
        default=1,
        help="worker processes for parallel frontier fan-out "
        "(default: 1 = serial; 0 = one per CPU)",
    )
    OutputOptions.add_to_parser(
        parser,
        out_help="JSONL checkpoint: one canonical record per explored "
        "subtree; rerunning with the same file resumes an interrupted "
        "check (implies the frontier engine even with --workers 1)",
    )
    _add_print_spec(parser)
    parser.add_argument(
        "--frontier-depth", type=int, default=6, metavar="D",
        help="depth at which subtrees are handed to workers "
        "(default: 6)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny serial reduced check of one scenario (for CI)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in scenario_names():
            print(name)
        return 0

    if args.smoke and args.scenario:
        print(
            "--smoke runs a fixed scenario with fixed settings and "
            "cannot be combined with --scenario",
            file=sys.stderr,
        )
        return 2
    names = args.scenario or [key for _, key in E13_SUITE]
    unknown = [name for name in names if name not in scenario_names()]
    if unknown:
        print(
            f"unknown scenario(s): {', '.join(unknown)} "
            "(see python -m repro check --list)",
            file=sys.stderr,
        )
        return 2
    if args.smoke:
        names = ["alg1-w1-r1"]
        args.workers, args.out, args.compare = 1, None, False
        args.baseline = False
    args.scenario = names
    if _maybe_print_spec("check", args):
        return 0
    output = OutputOptions.from_args(args)
    reduce = not args.baseline
    fingerprints = reduce and not args.no_fingerprints
    use_engine = args.workers != 1 or output.out is not None

    rows = []
    failed = partial = False
    for name in names:
        budget_note = None
        baseline_report = None
        baseline_partial = False
        if args.compare:
            # The baseline leg gets its own budget handling so that a
            # too-large raw enumeration still leaves the (much
            # smaller) reduced verification to run and be reported.
            factory, check = get_scenario(name)()
            try:
                baseline_report = explore(
                    factory, check,
                    max_executions=args.max_executions,
                    max_depth=args.max_depth,
                    reduce=False, fingerprints=False,
                )
            except ExplorationBudgetExceeded as exc:
                baseline_report = exc.report
                baseline_partial = True
                partial = True
                print(
                    f"  budget [{name}, baseline]: {exc}; raw "
                    f"enumeration is partial at "
                    f"{baseline_report.executions} executions",
                    file=sys.stderr,
                )
        try:
            if use_engine:
                out = None
                if output.out:
                    suffix = f".{name}" if len(names) > 1 else ""
                    out = output.out + suffix
                report = explore_parallel(
                    name,
                    workers=args.workers or None,
                    frontier_depth=args.frontier_depth,
                    max_executions=args.max_executions,
                    max_depth=args.max_depth,
                    reduce=reduce, fingerprints=fingerprints,
                    checkpoint=out, resume=output.resume,
                )
            else:
                factory, check = get_scenario(name)()
                report = explore(
                    factory, check,
                    max_executions=args.max_executions,
                    max_depth=args.max_depth,
                    reduce=reduce, fingerprints=fingerprints,
                )
        except ExplorationBudgetExceeded as exc:
            report = exc.report
            budget_note = str(exc)
            partial = True
        row = {
            "scenario": name,
            "explored": report.executions,
            "states": report.distinct_states,
            "violations": len(report.violations),
        }
        if args.compare:
            # Keys must exist on every row (the table derives its
            # columns from the first one), including PARTIAL rows.
            complete = baseline_report is not None and not baseline_partial
            row["baseline"] = (
                f"{baseline_report.executions}"
                + ("+" if baseline_partial else "")
                if baseline_report is not None else "-"
            )
            row["reduction"] = (
                f"{baseline_report.executions / report.executions:.1f}x"
                if complete and report.executions else "-"
            )
            if complete and baseline_report.verdicts != report.verdicts:
                failed = True
                row["verdict"] = "MISMATCH"
        if "verdict" not in row:
            # A proven violation outranks an exhausted budget: partial
            # coverage that already found a bug is a FAIL, not merely
            # inconclusive.
            row["verdict"] = (
                "FAIL" if report.violations
                else ("PARTIAL" if budget_note or baseline_partial
                      else "PASS")
            )
        rows.append(row)
        if report.violations:
            failed = True
            for violation in report.violations[:5]:
                print(f"  violation [{name}]: {violation}", file=sys.stderr)
        if budget_note:
            print(f"  budget [{name}]: {budget_note}; partial report "
                  f"covers {report.executions} executions",
                  file=sys.stderr)
    print(render_table(rows))
    if failed:
        return 1
    return 2 if partial else 0


def _fuzz(argv) -> int:
    """The ``fuzz`` subcommand: randomized schedule search
    (``repro.fuzz``) with replay and counterexample shrinking."""
    import argparse

    from repro.campaign import EngineOptions, OutputOptions
    from repro.fuzz import (
        DEFAULT_MAX_STEPS,
        ReplayMismatch,
        TraceFormatError,
        dumps_trace,
        get_target,
        loads_trace,
        replay_trace,
        sampler_names,
        target_names,
    )
    from repro.fuzz.campaign import run_campaign
    from repro.harness.tables import render_table
    from repro.mc.scenarios import E13_SUITE

    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Sample randomized schedules of named targets "
        "(every model-checking scenario plus crash-injecting fuzz "
        "targets), judging each complete execution with the target's "
        "oracle (fastlin verdicts, audit exactness).  Every run records "
        "a replayable trace; the first violation is delta-debugged to a "
        "locally-minimal counterexample schedule.  Exit codes: 0 all "
        "schedules clean, 1 a violation was found, 2 the wall-clock "
        "budget expired before the campaign finished (PARTIAL) or a "
        "usage error.",
        epilog=_CAMPAIGN_EPILOG,
    )
    parser.add_argument(
        "--target", nargs="+", default=None, metavar="NAME",
        help="fuzz target names (default: the E13 suite; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered fuzz targets and exit",
    )
    parser.add_argument(
        "--sampler", choices=sampler_names(), default="uniform",
        help="schedule sampler (default: uniform)",
    )
    parser.add_argument(
        "--pct-depth", type=int, default=3, metavar="D",
        help="PCT bug depth for --sampler pct (default: 3)",
    )
    parser.add_argument(
        "--fault-max-rate", type=int, default=5000, metavar="N",
        help="for --sampler fault: ceiling of the per-run fault rate "
        "drawn from each seed, in faults per 10000 decisions "
        "(default: 5000)",
    )
    parser.add_argument(
        "--schedules", type=int, default=256, metavar="N",
        help="schedules per target (default: 256)",
    )
    parser.add_argument(
        "--batch", type=int, default=32, metavar="N",
        help="schedules per engine task; the unit of parallel fan-out "
        "and of checkpoint resume (default: 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="root of the deterministic seed fan-out (default: 0)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=DEFAULT_MAX_STEPS, metavar="N",
        help=f"schedule-length budget per run "
        f"(default: {DEFAULT_MAX_STEPS})",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="keep the first violating trace as recorded "
        "(skip delta debugging)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="run the whole campaign even after a violation "
        "(default: stop after the first violating chunk)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; expiring mid-campaign reports the "
        "partial evidence and exits 2",
    )
    parser.add_argument(
        "--save-trace", default=None, metavar="FILE",
        help="write the first violation's (shrunk) trace as canonical "
        "JSON for --replay",
    )
    parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-execute a saved trace byte-identically and report its "
        "verdict (ignores the campaign options)",
    )
    parser.add_argument(
        "--expect-violation", action="store_true",
        help="invert the verdict for CI: exit 0 iff a violation was "
        "found (campaign) or reproduced (--replay)",
    )
    EngineOptions.add_to_parser(
        parser,
        default=1,
        help="worker processes for batch fan-out "
        "(default: 1 = serial; 0 = one per CPU)",
    )
    OutputOptions.add_to_parser(
        parser,
        out_help="JSONL checkpoint: one canonical record per batch; "
        "rerunning with the same file resumes an interrupted campaign",
    )
    _add_print_spec(parser)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixed campaign on the naive baseline's seeded "
        "violation (for CI; pair with --expect-violation)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in target_names():
            print(name)
        return 0

    if args.replay:
        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            trace = loads_trace(text)
        except (OSError, TraceFormatError) as exc:
            print(f"fuzz: cannot load trace: {exc}", file=sys.stderr)
            return 2
        try:
            target = get_target(trace.target)
        except KeyError as exc:
            print(f"fuzz: {exc}", file=sys.stderr)
            return 2
        try:
            result = replay_trace(target, trace)
        except ReplayMismatch as exc:
            print(f"fuzz: replay diverged: {exc}", file=sys.stderr)
            return 2
        # Byte-identity is judged on canonical serializations, so an
        # equivalent non-canonical encoding of the same trace (pretty-
        # printed JSON) replays fine; only a diverging verdict fails.
        identical = dumps_trace(result.trace) == dumps_trace(trace)
        print(f"  target:   {trace.target}")
        print(f"  decisions:{len(trace):>6}")
        print(f"  recorded: {trace.verdict or 'clean'}")
        print(f"  replayed: {result.verdict or 'clean'}")
        print(f"  byte-identical re-execution: "
              f"{'yes' if identical else 'NO'}")
        if not identical:
            print(
                "fuzz: re-execution diverged from the recorded trace "
                "(replayed verdict differs)",
                file=sys.stderr,
            )
            return 2
        violating = result.verdict is not None
        if args.expect_violation:
            return 0 if violating else 1
        return 1 if violating else 0

    if args.smoke:
        overridden = [
            flag
            for flag, name in (
                ("--target", "target"), ("--sampler", "sampler"),
                ("--schedules", "schedules"), ("--batch", "batch"),
                ("--seed", "seed"), ("--workers", "workers"),
            )
            if getattr(args, name) != parser.get_default(name)
        ]
        if overridden:
            print(
                "--smoke runs a fixed target with fixed settings and "
                f"cannot be combined with {', '.join(overridden)}",
                file=sys.stderr,
            )
            return 2
        args.target = ["naive-crash-audit"]
        args.schedules, args.batch, args.workers = 64, 16, 1
        args.sampler, args.seed = "uniform", 0
    names = args.target or [key for _, key in E13_SUITE]
    unknown = [name for name in names if name not in target_names()]
    if unknown:
        print(
            f"unknown fuzz target(s): {', '.join(unknown)} "
            "(see python -m repro fuzz --list)",
            file=sys.stderr,
        )
        return 2

    if _maybe_print_spec("fuzz", args):
        return 0
    output = OutputOptions.from_args(args)
    sampler_params = {}
    if args.sampler == "pct":
        sampler_params["depth"] = args.pct_depth
    if args.sampler == "fault":
        sampler_params["max_rate_per_10k"] = args.fault_max_rate
    workers = EngineOptions.from_args(args).resolved

    def progress(done, total, record):
        if done % 4 == 0 or done == total:
            print(f"fuzz [{done}/{total} batches]",
                  file=sys.stderr, flush=True)

    try:
        report = run_campaign(
            names,
            schedules=args.schedules,
            batch=args.batch,
            sampler=args.sampler,
            sampler_params=sampler_params,
            root_seed=args.seed,
            max_steps=args.max_steps,
            shrink=not args.no_shrink,
            workers=workers,
            checkpoint=output.out,
            resume=output.resume,
            time_budget=args.time_budget,
            stop_on_violation=not args.keep_going,
            progress=progress,
        )
    except ValueError as exc:
        # Bad knob values (--schedules 0, --pct-depth 0, ...) are
        # usage errors (exit 2), never a "violation found" exit 1.
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2

    expected_batches = -(-args.schedules // args.batch)  # per target
    by_target: dict = {}
    batches_seen: dict = {}
    for record in report.records:
        payload = record["payload"]
        row = by_target.setdefault(payload["target"], {
            "target": payload["target"],
            "sampler": payload["sampler"],
            "schedules": 0,
            "steps": 0,
            "violations": 0,
            "verdict": "PASS",
        })
        batches_seen[payload["target"]] = (
            batches_seen.get(payload["target"], 0) + 1
        )
        row["schedules"] += payload["schedules"]
        row["steps"] += payload["steps"]
        row["violations"] += payload["violations"]
        if payload["violations"]:
            row["verdict"] = "FAIL"
    rows = list(by_target.values())
    if report.partial or report.stopped_early:
        # Only targets whose batches were actually cut short (by the
        # time budget or by stopping at another target's violation)
        # are PARTIAL; a target that finished keeps its complete
        # verdict.
        for row in rows:
            incomplete = batches_seen[row["target"]] < expected_batches
            if row["verdict"] == "PASS" and incomplete:
                row["verdict"] = "PARTIAL"
    if rows:
        print(render_table(rows))
        print()
    first = report.first_violation
    if first is not None:
        shrunk = first["shrunk"] or first["trace"]
        print(
            f"  violation [{first['target']}]: {first['verdict']}"
        )
        print(
            f"  trace: {first['trace_len']} decisions"
            + (
                f", shrunk to {first['shrunk_len']} "
                f"({first['shrink_checks']} oracle checks)"
                if first["shrunk"] else " (shrinking disabled)"
            )
        )
        if args.save_trace:
            from repro.fuzz import trace_from_payload

            with open(args.save_trace, "w", encoding="utf-8") as handle:
                handle.write(dumps_trace(trace_from_payload(shrunk)))
                handle.write("\n")
            print(f"  counterexample trace: {args.save_trace}")
    mark = (
        "FAIL" if report.violations
        else ("PARTIAL" if report.partial else "PASS")
    )
    print(
        f"  [{mark}] {report.schedules} schedules "
        f"({report.steps} decisions, {report.incomplete} hit the step "
        f"budget) across {len(report.records)} batches in "
        f"{report.elapsed:.2f}s with {report.workers} worker(s); "
        f"{report.violations} violating schedule(s)"
    )
    if report.checkpoint:
        print(f"  records: {report.checkpoint}")
    code = report.exit_code
    if args.expect_violation:
        return 0 if code == 1 else (code or 1)
    return code


def _stress(argv) -> int:
    """The ``stress`` subcommand: real threads through ``repro.rt``."""
    import argparse

    from repro.campaign import OutputOptions
    from repro.rt import STRESS_OBJECTS, STRESS_RUNTIMES, run_stress

    parser = argparse.ArgumentParser(
        prog="python -m repro stress",
        description="Run writer/reader/auditor workers against an "
        "auditable object on the thread runtime (one OS thread per "
        "worker) or the process runtime (one OS process per worker, "
        "primitives served by a memory-server process), for an op-count "
        "budget and/or a wall-clock duration.  Reports ops/sec and "
        "latency percentiles; for bounded budgets the recorded history "
        "is post-validated by the linearizability checker (and, where "
        "the syntactic oracle applies, audit exactness).  Exit codes: "
        "0 clean, 1 a validation failure, 2 an undecided "
        "linearizability verdict (node budget) or a usage error.",
        epilog=_CAMPAIGN_EPILOG,
    )
    parser.add_argument(
        "--object", choices=STRESS_OBJECTS, default="register",
        help="which object to stress (default: register)",
    )
    parser.add_argument(
        "--runtime", choices=STRESS_RUNTIMES, default="thread",
        help="execution backend: 'thread' (default) or 'process' "
        "(multiprocessing memory server; scales past the GIL on "
        "multi-core hosts)",
    )
    parser.add_argument(
        "--threads", type=int, default=8, metavar="N",
        help="total worker budget, split readers/writers/auditors "
        "(default: 8); --readers/--writers/--auditors override",
    )
    parser.add_argument("--readers", type=int, default=None, metavar="N")
    parser.add_argument("--writers", type=int, default=None, metavar="N")
    parser.add_argument("--auditors", type=int, default=None, metavar="N")
    parser.add_argument(
        "--ops", type=int, default=None, metavar="N",
        help="operations per thread (default: 25; unbounded with "
        "--duration)",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; threads stop starting new operations "
        "at the deadline",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for write values, pads and nonces (default: 0); "
        "interleavings still come from the OS scheduler",
    )
    parser.add_argument(
        "--faults", default=None, metavar="FAMILIES",
        help="chaos mode: comma-separated fault families injected at "
        "the primitive-arrival seam.  The process runtime supports "
        "crash, delay, partition, dup, omit, recover (served at the "
        "memory server); the thread runtime supports crash, delay "
        "(e.g. --faults crash,partition,dup)",
    )
    parser.add_argument(
        "--fault-rate", type=int, default=100, metavar="N",
        help="total faults per 10000 primitive requests, split across "
        "the --faults families (default: 100)",
    )
    parser.add_argument(
        "--validate", dest="validate", action="store_true", default=None,
        help="force history post-validation (default: on for op "
        "budgets, off for duration-only runs)",
    )
    parser.add_argument(
        "--no-validate", dest="validate", action="store_false",
        help="skip history post-validation",
    )
    parser.add_argument(
        "--online", action="store_true",
        help="stream instead of buffer: disable history retention and "
        "validate incrementally as events are recorded, so memory stays "
        "bounded on unbounded runs (validates duration-only runs too)",
    )
    parser.add_argument(
        "--event-log", default=None, metavar="FILE",
        help="stream every history event to FILE in the JSONL wire "
        "format (consumable by 'python -m repro serve')",
    )
    parser.add_argument(
        "--stream-window", type=int, default=None, metavar="N",
        help="events per budget-accounting window of the online "
        "checker (default: repro.analysis.streamlin.DEFAULT_WINDOW)",
    )
    parser.add_argument(
        "--no-latency", action="store_true",
        help="skip per-op latency sampling (the sample list grows with "
        "the run; recommended for long bounded-memory runs)",
    )
    parser.add_argument(
        "--join-watchdog", type=float, default=None, metavar="SECONDS",
        help="report workers still running this long past the expected "
        "end as hung (default 60; raise for bounded op budgets that "
        "legitimately take minutes, 0 = wait forever)",
    )
    OutputOptions.add_to_parser(
        parser,
        include_resume=False,
        out_help="append one canonical JSONL record of the run's "
        "metrics and verdicts to FILE",
    )
    _add_print_spec(parser)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixed run (register, 4 workers, 8 ops/worker, "
        "validated) for CI; combines with --runtime",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.object, args.threads, args.ops = "register", 4, 8
        args.duration, args.seed, args.validate = None, 0, True
        args.readers = args.writers = args.auditors = None
    if args.ops is None and args.duration is None:
        args.ops = 25
    if _maybe_print_spec("stress", args):
        return 0
    output = OutputOptions.from_args(args)

    try:
        report = run_stress(
            args.object,
            threads=args.threads,
            readers=args.readers,
            writers=args.writers,
            auditors=args.auditors,
            ops=args.ops,
            duration=args.duration,
            seed=args.seed,
            validate=args.validate,
            runtime=args.runtime,
            faults=args.faults,
            fault_rate=args.fault_rate,
            online=args.online,
            event_log=args.event_log,
            stream_window=args.stream_window,
            record_latency=not args.no_latency,
            **(
                {}
                if args.join_watchdog is None
                else {"join_watchdog": args.join_watchdog or None}
            ),
        )
    except ValueError as exc:
        print(f"stress: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if output.out:
        from repro.engine.engine import encode_record

        with open(output.out, "a", encoding="utf-8") as handle:
            handle.write(encode_record(report.to_payload()) + "\n")
        print(f"  record appended: {output.out}")
    if not report.ok:
        return 1
    from repro.analysis.fastlin import LIN_UNDECIDED

    if report.validated and report.lin_status == LIN_UNDECIDED:
        # The node budget expired before a verdict: inconclusive, the
        # same PARTIAL exit every other subcommand uses — not success.
        return 2
    return 0


def _serve(argv) -> int:
    """The ``serve`` subcommand: the streaming verification service
    (online fastlin + windowed audit oracle over a JSONL event log)."""
    import argparse
    import json

    from repro.campaign import OutputOptions
    from repro.rt.serve import VerdictServer, serve_file, serve_lines

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Stream a JSONL event log (produced by any runtime "
        "via --event-log, or by 'repro stress --online') through the "
        "incremental linearizability checker and, for stress logs, the "
        "windowed audit-exactness oracle.  Memory stays bounded by the "
        "stream's overlap width, so arbitrarily long runs can be "
        "verified while they happen (--follow).  A stream cut before "
        "its end marker yields a PARTIAL verdict carrying the last "
        "verified frontier.  Exit codes: 0 verified clean, 1 a "
        "violation was proven, 2 partial/undecided or a usage error.",
    )
    parser.add_argument(
        "log", nargs="?", metavar="LOG",
        help="JSONL event-log file, or '-' to read stdin",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="keep polling at EOF until the end marker arrives (watch "
        "a log another process is still writing)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="with --follow: give up (PARTIAL) after this long with no "
        "new bytes (default: wait forever)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="NAME",
        help="check against a named fastlin spec (linearizability "
        "only) instead of rebuilding the stress validator from the "
        "log's hello metadata",
    )
    parser.add_argument(
        "--spec-params", default=None, metavar="JSON",
        help="JSON object of parameters for --spec",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="closure-node budget per accounting window (default: the "
        "fastlin default)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="events per budget-accounting window (default: the log's "
        "hello metadata, else streamlin's default)",
    )
    parser.add_argument(
        "--progress", type=int, default=0, metavar="N",
        help="print rolling progress (frontier, residency) every N "
        "events to stderr",
    )
    OutputOptions.add_to_parser(
        parser,
        include_resume=False,
        out_help="append one canonical JSONL record of the served "
        "verdict to FILE (the stress --out convention)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="self-contained CI check: run a small seeded stress run "
        "into a temporary event log, serve it, and assert the verdict "
        "matches the batch oracle on the buffered history",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _serve_smoke()
    if not args.log:
        parser.error("an event LOG is required (or --smoke)")
    if args.spec_params and not args.spec:
        parser.error("--spec-params requires --spec")
    try:
        spec_params = (
            json.loads(args.spec_params) if args.spec_params else None
        )
    except json.JSONDecodeError as exc:
        print(f"serve: bad --spec-params: {exc}", file=sys.stderr)
        return 2

    from repro.analysis.fastlin import DEFAULT_MAX_NODES

    def progress(snapshot):
        print(
            f"serve [{snapshot.get('events_seen', 0)} events] "
            f"frontier={snapshot.get('frontier_index')} "
            f"resident={snapshot.get('resident_ops')} "
            f"retired={snapshot.get('ops_retired')}",
            file=sys.stderr, flush=True,
        )

    try:
        server = VerdictServer(
            spec=args.spec,
            spec_params=spec_params,
            max_nodes=(
                args.max_nodes if args.max_nodes is not None
                else DEFAULT_MAX_NODES
            ),
            window=args.window,
            progress_every=args.progress,
            progress=progress if args.progress else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        if args.log == "-":
            outcome = serve_lines(server, sys.stdin)
        else:
            outcome = serve_file(
                server, args.log,
                follow=args.follow, idle_timeout=args.idle_timeout,
            )
    except OSError as exc:
        print(f"serve: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as exc:
        print(f"serve: invalid event log: {exc}", file=sys.stderr)
        return 2
    print(outcome.render())
    if args.out:
        from repro.engine.engine import encode_record

        record = {
            "kind": "serve",
            "status": outcome.status,
            "lin_ok": outcome.lin_ok,
            "audit_ok": outcome.audit_ok,
            "clean_end": outcome.clean_end,
            "meta": outcome.meta,
            "stream": outcome.stream,
        }
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(encode_record(record) + "\n")
        print(f"  record appended: {args.out}")
    return outcome.exit_code


def _serve_smoke() -> int:
    """Differential CI smoke: one stress run, served log vs batch
    oracle on the buffered history — verdicts must agree."""
    import os
    import tempfile

    from repro.analysis.audit_checks import check_audit_exactness
    from repro.analysis.fastlin import check_history as batch_check
    from repro.analysis.specs import stream_register_spec
    from repro.analysis.streamlin import DEFAULT_WINDOW
    from repro.rt.serve import VerdictServer, serve_file
    from repro.rt.stress import _build
    from repro.sim.event_log import JsonlEventSink

    fd, path = tempfile.mkstemp(prefix="repro-serve-smoke-", suffix=".jsonl")
    os.close(fd)
    try:
        sink = JsonlEventSink(path, meta={
            "kind": "stress", "object": "register",
            "r": 2, "w": 1, "a": 1, "seed": 0,
            "max_substrate": "atomic", "snapshot_substrate": "afek",
            "window": DEFAULT_WINDOW,
        })
        system = _build(
            "register", 2, 1, 1, 0, 8, "atomic", "afek",
            event_log=sink, retain_history=True,
        )
        history = system.runtime.run()
        sink.close()

        batch = batch_check(
            history.operations(), stream_register_spec("v0")
        )
        audit_violations = check_audit_exactness(history, system.register)
        outcome = serve_file(VerdictServer(), path)
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass

    print(outcome.render())
    print(
        f"  batch oracle  : lin={batch.status} "
        f"audit={'ok' if not audit_violations else 'FAIL'} "
        f"({len(history.operations())} ops buffered)"
    )
    lin_match = outcome.status == batch.status
    audit_match = outcome.audit_ok == (not audit_violations)
    match = lin_match and audit_match and outcome.clean_end
    print(
        f"  [{'PASS' if match else 'FAIL'}] served verdict matches the "
        "batch oracle"
    )
    if not match:
        return 1
    return outcome.exit_code


def _lin(argv) -> int:
    """The ``lin`` subcommand: the batched linearizability verdict
    service on recorded histories (field profiling)."""
    import argparse
    import json
    import time

    from repro.analysis.fastlin import (
        DEFAULT_MAX_NODES,
        LIN_FAIL,
        LIN_UNDECIDED,
        check_histories_parallel,
        spec_names,
    )
    from repro.campaign import EngineOptions, OutputOptions
    from repro.harness.tables import render_table

    parser = argparse.ArgumentParser(
        prog="python -m repro lin",
        description="Check recorded histories from a JSONL file against "
        "a named sequential specification through the fastlin verdict "
        "service, printing per-history verdict, nodes explored and "
        "wall time.  Each input line is either a JSON array of "
        "operation payloads (repro.analysis.fastlin.op_to_payload) or "
        "an object {\"history\": [...], \"spec\": ..., "
        "\"spec_params\": {...}}.  Exit codes: 0 all linearizable, "
        "1 a history is not linearizable, 2 undecided (node budget) "
        "or a usage/input error (the argparse and repro-check "
        "convention).",
    )
    parser.add_argument(
        "history", nargs="?", metavar="FILE",
        help="JSONL history file (one history per line)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="NAME",
        help="named spec (see --list-specs); overrides per-record specs "
        "(default: per-record, falling back to 'register')",
    )
    parser.add_argument(
        "--spec-params", default=None, metavar="JSON",
        help="JSON object of parameters for --spec "
        "(e.g. '{\"initial\": \"v0\"}')",
    )
    parser.add_argument(
        "--list-specs", action="store_true",
        help="list registered spec names and exit",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=DEFAULT_MAX_NODES, metavar="N",
        help="search-node budget per history; exhausting it yields an "
        f"UNDECIDED verdict and exit code 2 (default: {DEFAULT_MAX_NODES})",
    )
    EngineOptions.add_to_parser(
        parser,
        default=1,
        help="worker processes for the batched verdict service "
        "(default: 1 = serial; 0 = one per CPU)",
    )
    OutputOptions.add_to_parser(
        parser,
        out_help="JSONL checkpoint: one canonical verdict record per "
        "history; rerunning with the same file resumes an interrupted "
        "batch",
    )
    args = parser.parse_args(argv)

    if args.list_specs:
        for name in spec_names():
            print(name)
        return 0
    if not args.history:
        parser.error("a history FILE is required (or --list-specs)")
    if args.spec_params and not args.spec:
        parser.error("--spec-params requires --spec")

    try:
        override_params = (
            json.loads(args.spec_params) if args.spec_params else None
        )
    except json.JSONDecodeError as exc:
        print(f"lin: bad --spec-params: {exc}", file=sys.stderr)
        return 2
    jobs = []
    try:
        with open(args.history, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(
                        f"lin: {args.history}:{lineno}: bad JSON: {exc}",
                        file=sys.stderr,
                    )
                    return 2
                if isinstance(record, list):
                    payloads, spec, params = record, None, None
                elif (isinstance(record, dict)
                        and isinstance(record.get("history"), list)):
                    payloads = record["history"]
                    spec = record.get("spec")
                    params = record.get("spec_params")
                else:
                    print(
                        f"lin: {args.history}:{lineno}: expected a "
                        "JSON array of operation payloads or an "
                        "object with a \"history\" key",
                        file=sys.stderr,
                    )
                    return 2
                required = ("pid", "op_id", "name", "args", "invoke",
                            "response", "result")
                for payload in payloads:
                    if not (isinstance(payload, dict)
                            and all(key in payload for key in required)):
                        print(
                            f"lin: {args.history}:{lineno}: not an "
                            "operation payload (need "
                            f"{'/'.join(required)} keys; see "
                            "repro.analysis.fastlin.op_to_payload)",
                            file=sys.stderr,
                        )
                        return 2
                # Payloads pass straight through to the verdict
                # service -- workers decode them exactly once.
                jobs.append((
                    payloads,
                    args.spec or spec or "register",
                    (override_params or {}) if args.spec
                    else (params or {}),
                ))
    except OSError as exc:
        print(f"lin: cannot read {args.history}: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print(f"lin: {args.history} holds no histories", file=sys.stderr)
        return 2

    workers = EngineOptions.from_args(args).resolved
    output = OutputOptions.from_args(args)
    start = time.perf_counter()
    try:
        verdicts = check_histories_parallel(
            jobs,
            workers=workers,
            max_nodes=args.max_nodes,
            checkpoint=output.out,
            resume=output.resume,
        )
    except (KeyError, TypeError, ValueError) as exc:
        # Undecodable payload values or an unknown spec name are input
        # errors (exit 2), not linearizability violations (exit 1).
        print(f"lin: invalid history or spec: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    rows = []
    for verdict, (ops, spec, _params) in zip(verdicts, jobs):
        rows.append({
            "history": verdict.index,
            "spec": spec,
            "ops": verdict.ops,
            "partitions": verdict.partitions,
            "nodes": verdict.explored,
            "verdict": verdict.status.upper(),
        })
    print(render_table(rows))
    total_nodes = sum(v.explored for v in verdicts)
    failed = sum(1 for v in verdicts if v.status == LIN_FAIL)
    undecided = sum(1 for v in verdicts if v.status == LIN_UNDECIDED)
    print()
    print(
        f"  {len(verdicts)} histories, {total_nodes} nodes explored in "
        f"{elapsed:.3f}s with {workers} worker(s); "
        f"{failed} not linearizable, {undecided} undecided"
    )
    if output.out:
        print(f"  records: {output.out}")
    if failed:
        return 1
    return 2 if undecided else 0


def _campaign_smoke_spec():
    """The built-in CI campaign: one check + one fuzz section, clean."""
    from repro.campaign import CampaignSpec

    spec = CampaignSpec(name="smoke")
    spec.section(
        "mc", "check", max_executions=50_000,
    ).axis("scenario", "alg1-w1-r1")
    spec.section(
        "fuzzing", "fuzz", seeds=[0, 1], schedules=8, batch=8,
    ).axis("target", "alg1-w1-r1")
    return spec


def _campaign_example_spec():
    """The worked template ``repro campaign example`` prints (the one
    DESIGN.md section 12 and the README walk through)."""
    from repro.campaign import CampaignSpec

    spec = CampaignSpec(name="nightly", root_seed=0)
    spec.section(
        "mc", "check", max_executions=100_000,
    ).axis("scenario", "alg1-w1-r1", "alg2-w1-r1")
    chaos = spec.section(
        "chaos-stress", "stress",
        seeds=[0, 1], threads=3, ops=8, faults="crash,delay",
    )
    chaos.axis("object", "register", "max")
    chaos.axis("runtime", "thread", "process")
    chaos.axis("fault_rate", 0, 150)
    spec.section(
        "fuzzing", "fuzz", seeds=2, schedules=32, batch=16,
    ).axis("target", "alg1-w2", "alg1-w1-a1")
    return spec


def _campaign(argv) -> int:
    """The ``campaign`` subcommand: declarative multi-section campaigns
    (``repro.campaign``) compiled onto the execution engine."""
    import argparse

    from repro.campaign import (
        EngineOptions,
        OutputOptions,
        SpecError,
        compile_spec,
        dumps_spec,
        load_spec,
        render_outcome,
        run_spec,
        section_checkpoint,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a declarative campaign spec: ordered sections, "
        "each crossing axes (scenarios x runtimes x fault plans x "
        "seeds) into concrete points executed through the engine's "
        "byte-identical resumable JSONL contract, one checkpoint file "
        "per section.  Exit codes: 0 every point PASS, 1 any point "
        "FAIL, 2 no failures but at least one PARTIAL (or a usage "
        "error).  See DESIGN.md section 12.",
    )
    actions = parser.add_subparsers(dest="action", metavar="ACTION")

    run_parser = actions.add_parser(
        "run", help="execute a spec (TOML/JSON file, or --smoke)",
    )
    run_parser.add_argument(
        "spec", nargs="?", metavar="SPEC",
        help="campaign spec file (.toml, or .json for Python < 3.11)",
    )
    EngineOptions.add_to_parser(
        run_parser,
        default=None,
        help="worker processes per section (default: the spec's own "
        "workers value; 0 = one per CPU; 1 = serial; sections whose "
        "executor is serial-only always run with 1)",
    )
    OutputOptions.add_to_parser(
        run_parser,
        out_help="checkpoint base path: each section writes "
        "OUT.<section>.jsonl; rerunning resumes finished sections "
        "instantly and interrupted sections mid-file",
    )
    run_parser.add_argument(
        "--only", nargs="+", default=None, metavar="SECTION",
        help="run only the named sections (in spec order)",
    )
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="run the built-in CI campaign (one check section + one "
        "two-seed fuzz section) instead of a spec file",
    )

    show_parser = actions.add_parser(
        "show", help="validate and summarize a spec without running it",
    )
    show_parser.add_argument("spec", metavar="SPEC")

    actions.add_parser(
        "example", help="print a worked spec.toml template to stdout",
    )

    args = parser.parse_args(argv)

    if args.action == "example":
        sys.stdout.write(dumps_spec(_campaign_example_spec()))
        return 0

    if args.action == "show":
        try:
            spec = load_spec(args.spec)
            compiled = compile_spec(spec)
        except SpecError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        print(f"campaign {spec.name!r} (root_seed={spec.root_seed}):")
        for section in spec.sections:
            axes = " x ".join(
                f"{axis.name}[{len(axis.values)}]"
                for axis in section.axes
            ) or "(no axes)"
            print(
                f"  [{section.kind}] {section.name}: {axes} -> "
                f"{len(compiled[section.name])} points"
            )
        print(f"  total: {sum(len(t) for t in compiled.values())} points")
        return 0

    if args.action != "run":
        parser.error("an ACTION is required (run, show or example)")
    if args.smoke and args.spec:
        print(
            "--smoke runs the built-in campaign and cannot be combined "
            "with a SPEC file",
            file=sys.stderr,
        )
        return 2
    if not args.smoke and not args.spec:
        run_parser.error("a SPEC file is required (or --smoke)")

    output = OutputOptions.from_args(args)
    try:
        spec = (
            _campaign_smoke_spec() if args.smoke else load_spec(args.spec)
        )

        def progress(section, done, total):
            if done % 5 == 0 or done == total:
                print(
                    f"campaign [{section} {done}/{total}]",
                    file=sys.stderr, flush=True,
                )

        outcome = run_spec(
            spec,
            workers=args.workers,
            out=output.out,
            resume=output.resume,
            only=args.only,
            progress=progress,
        )
    except SpecError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    print(render_outcome(outcome))
    if output.out:
        for section in outcome.sections:
            print(f"  records: {section_checkpoint(output.out, section.name)}")
    return outcome.exit_code


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        return _overview()
    command, *rest = argv
    if command in ("version", "--version"):
        from repro import __version__

        print(__version__)
        return 0
    if command == "experiments":
        from repro.harness.experiments import main as experiments_main

        return experiments_main(rest)
    if command == "campaign":
        return _campaign(rest)
    if command == "sweep":
        return _sweep(rest)
    if command == "check":
        return _check(rest)
    if command == "fuzz":
        return _fuzz(rest)
    if command == "stress":
        return _stress(rest)
    if command == "lin":
        return _lin(rest)
    if command == "serve":
        return _serve(rest)
    if command == "attacks":
        import runpy
        import pathlib

        demo = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "curious_reader_demo.py"
        )
        if demo.exists():
            runpy.run_path(str(demo), run_name="__main__")
            return 0
        print("examples/curious_reader_demo.py not found", file=sys.stderr)
        return 1
    print(f"unknown command {command!r}", file=sys.stderr)
    _overview()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
