"""Command-line entry point.

    python -m repro                     # overview
    python -m repro experiments [E...]  # run experiment drivers
    python -m repro sweep [options]     # parallel seeded sweep (engine)
    python -m repro attacks             # run the attack gallery
    python -m repro version

Sweep example -- 64 derived seeds per grid point, fanned out over 4
worker processes, streamed to a resumable JSONL checkpoint::

    python -m repro sweep --seeds 64 --readers 1 2 4 --writers 1 2 \\
        --workers 4 --out sweep.jsonl

A quick serial sanity pass (used by CI)::

    python -m repro sweep --smoke
"""

from __future__ import annotations

import sys


def _overview() -> int:
    from repro import __version__
    from repro.harness.experiment import registry
    import repro.harness.experiments  # noqa: F401 -- registers drivers

    print(f"repro {__version__} -- Auditing without Leaks Despite "
          "Curiosity (PODC 2025) reproduction")
    print()
    print("commands:")
    print("  python -m repro experiments [names]   run experiment drivers")
    print("  python -m repro sweep [options]       parallel seeded sweep")
    print("  python -m repro attacks               run the attack gallery")
    print("  python -m repro version               print the version")
    print()
    print("sweep example:")
    print("  python -m repro sweep --seeds 64 --workers 4 --out sweep.jsonl")
    print()
    print("registered experiments:", " ".join(sorted(registry())))
    return 0


def _sweep(argv) -> int:
    """The ``sweep`` subcommand: seeded executions through the engine."""
    import argparse
    import os

    from repro.engine import (
        aggregate_counts,
        all_clean,
        make_tasks,
        register_sweep_task,
        run_tasks,
        snapshot_sweep_task,
    )
    from repro.harness.tables import render_table
    from repro.workloads.sweeps import Sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run seeded executions of an auditable object over a "
        "parameter grid, checking linearizability and audit exactness "
        "per execution.  Seeds are derived deterministically from "
        "--root-seed, so results depend only on the grid, never on "
        "worker count or scheduling.",
    )
    parser.add_argument(
        "--object", choices=("register", "snapshot"), default="register",
        help="which auditable object to sweep (default: register)",
    )
    parser.add_argument(
        "--seeds", type=int, default=16, metavar="N",
        help="seeded executions per grid point (default: 16)",
    )
    parser.add_argument(
        "--root-seed", type=int, default=0,
        help="root of the deterministic seed fan-out (default: 0)",
    )
    parser.add_argument(
        "--readers", type=int, nargs="+", default=[1, 2, 4],
        help="reader counts for the register grid (default: 1 2 4)",
    )
    parser.add_argument(
        "--writers", type=int, nargs="+", default=[1, 2],
        help="writer counts for the register grid (default: 1 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="JSONL checkpoint: one canonical record per execution; "
        "rerunning with the same file resumes an interrupted sweep",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="ignore any existing records in --out and rerun everything",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny serial sweep (2 seeds, one grid point) for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.seeds, args.readers, args.writers, args.workers = 2, [1], [1], 1
    workers = args.workers or os.cpu_count() or 1

    if args.object == "register":
        grid = Sweep({"num_readers": args.readers,
                      "num_writers": args.writers})
        task_fn = register_sweep_task
        check_fields = ("lin_fail", "audit_fail", "structural_fail")
    else:
        grid = Sweep({"substrate": ["afek", "atomic"]})
        task_fn = snapshot_sweep_task
        check_fields = ("lin_fail", "audit_fail")

    tasks = make_tasks(
        grid.points(), seeds_per_point=args.seeds, root_seed=args.root_seed
    )

    def progress(done, total, record):
        if done % 25 == 0 or done == total:
            print(f"sweep [{done}/{total}]", file=sys.stderr, flush=True)

    report = run_tasks(
        task_fn,
        tasks,
        workers=workers,
        checkpoint=args.out,
        resume=not args.no_resume,
        progress=progress,
    )

    def point_label(record):
        return grid.point_name(record["params"])

    rows = []
    for group in aggregate_counts(report.records, key=point_label):
        row = {"point": group["group"], "executions": group["executions"]}
        for name in check_fields:
            row[name.replace("_", " ")] = group.get(name, 0)
        row["total steps"] = group.get("steps", 0)
        rows.append(row)
    print(render_table(rows))
    print()
    clean = all_clean(report.records, check_fields)
    mark = "PASS" if clean else "FAIL"
    print(
        f"  [{mark}] {report.total} executions "
        f"({report.executed} run, {report.skipped} resumed) in "
        f"{report.elapsed:.2f}s with {report.workers} worker(s); "
        "no linearizability or audit-exactness violations"
        if clean
        else f"  [{mark}] violations found -- inspect the JSONL records"
    )
    if report.checkpoint:
        print(f"  records: {report.checkpoint}")
    return 0 if clean else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        return _overview()
    command, *rest = argv
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    if command == "experiments":
        from repro.harness.experiments import main as experiments_main

        return experiments_main(rest)
    if command == "sweep":
        return _sweep(rest)
    if command == "attacks":
        import runpy
        import pathlib

        demo = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "curious_reader_demo.py"
        )
        if demo.exists():
            runpy.run_path(str(demo), run_name="__main__")
            return 0
        print("examples/curious_reader_demo.py not found", file=sys.stderr)
        return 1
    print(f"unknown command {command!r}", file=sys.stderr)
    _overview()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
