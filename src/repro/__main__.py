"""Command-line entry point.

    python -m repro                     # overview
    python -m repro experiments [E...]  # run experiment drivers
    python -m repro attacks             # run the attack gallery
    python -m repro version
"""

from __future__ import annotations

import sys


def _overview() -> int:
    from repro import __version__
    from repro.harness.experiment import registry
    import repro.harness.experiments  # noqa: F401 -- registers drivers

    print(f"repro {__version__} -- Auditing without Leaks Despite "
          "Curiosity (PODC 2025) reproduction")
    print()
    print("commands:")
    print("  python -m repro experiments [names]   run experiment drivers")
    print("  python -m repro attacks               run the attack gallery")
    print("  python -m repro version               print the version")
    print()
    print("registered experiments:", " ".join(sorted(registry())))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        return _overview()
    command, *rest = argv
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    if command == "experiments":
        from repro.harness.experiments import main as experiments_main

        return experiments_main(rest)
    if command == "attacks":
        import runpy
        import pathlib

        demo = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "curious_reader_demo.py"
        )
        if demo.exists():
            runpy.run_path(str(demo), run_name="__main__")
            return 0
        print("examples/curious_reader_demo.py not found", file=sys.stderr)
        return 1
    print(f"unknown command {command!r}", file=sys.stderr)
    _overview()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
